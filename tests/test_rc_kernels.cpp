// Direct tests of the RC-step kernels (post / ingest / propagate) against a
// hand-built two-rank fixture — the units underneath the engine's rc_step().
#include <gtest/gtest.h>

#include "core/ia.hpp"
#include "core/rc.hpp"
#include "runtime/cluster.hpp"

namespace aa {
namespace {

// Path graph 0-1-2-3, weights 1; rank 0 owns {0,1}, rank 1 owns {2,3}.
struct TwoRankFixture {
    Cluster cluster{2};
    LocalSubgraph sg0{0, {0, 0, 1, 1}};
    LocalSubgraph sg1{1, {0, 0, 1, 1}};
    DistanceStore store0{4};
    DistanceStore store1{4};

    TwoRankFixture() {
        for (const VertexId v : sg0.local_vertices()) {
            store0.add_row(v);
        }
        for (const VertexId v : sg1.local_vertices()) {
            store1.add_row(v);
        }
        sg0.add_local_edge(0, 1, 1.0);
        sg0.add_local_edge(1, 2, 1.0);
        sg1.add_local_edge(1, 2, 1.0);
        sg1.add_local_edge(2, 3, 1.0);
    }

    void run_ia() {
        ThreadPool pool(1);
        ia_dijkstra_all(sg0, store0, pool);
        ia_dijkstra_all(sg1, store1, pool);
    }
};

TEST(RcKernels, PostSendsOnlyToNeighborRanks) {
    TwoRankFixture fx;
    fx.run_ia();
    const double ops = rc_post_boundary_updates(fx.sg0, fx.store0, fx.cluster);
    EXPECT_GT(ops, 0.0);
    // Rank 0's only boundary vertex is 1 (cut edge 1-2), so exactly one
    // message, to rank 1.
    fx.cluster.exchange();
    const auto inbox1 = fx.cluster.receive(1);
    ASSERT_EQ(inbox1.size(), 1u);
    EXPECT_EQ(inbox1[0].tag, MessageTag::BoundaryDvUpdate);
    const auto blocks = decode_boundary_blocks(inbox1[0].bytes());
    // Interior row 0's changes are drained but not shipped.
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks[0].vertex, 1u);
    EXPECT_FALSE(fx.store0.any_send_pending());
}

TEST(RcKernels, InteriorRowChangesAreDrainedSilently) {
    TwoRankFixture fx;
    // Only touch interior row 0 (global 0 has no cut edges).
    fx.store0.relax(fx.sg0.local_id(0), 3, 9.0);
    EXPECT_TRUE(fx.store0.any_send_pending());
    rc_post_boundary_updates(fx.sg0, fx.store0, fx.cluster);
    EXPECT_FALSE(fx.store0.any_send_pending());
    EXPECT_FALSE(fx.cluster.has_pending_messages());
}

TEST(RcKernels, IngestRelaxesThroughCutEdges) {
    TwoRankFixture fx;
    fx.run_ia();
    // Rank 1 announces boundary vertex 2's distances.
    rc_post_boundary_updates(fx.sg1, fx.store1, fx.cluster);
    fx.cluster.exchange();
    const auto inbox0 = fx.cluster.receive(0);
    ASSERT_FALSE(inbox0.empty());
    const double ops = rc_ingest_updates(fx.sg0, fx.store0, inbox0);
    EXPECT_GT(ops, 0.0);
    // d(1, 3) <= w(1,2) + d(2,3) = 2 now known on rank 0.
    EXPECT_NEAR(fx.store0.at(fx.sg0.local_id(1), 3), 2.0, 1e-12);
}

TEST(RcKernels, IngestIgnoresForeignTags) {
    TwoRankFixture fx;
    fx.run_ia();
    Message odd;
    odd.from = 1;
    odd.to = 0;
    odd.tag = MessageTag::Control;
    odd.payload = Message::share(std::vector<std::byte>(8));
    const double ops = rc_ingest_updates(fx.sg0, fx.store0, {odd});
    EXPECT_EQ(ops, 0.0);
}

TEST(RcKernels, PropagateReachesLocalFixpoint) {
    TwoRankFixture fx;
    fx.run_ia();
    // Inject an improvement at row 1 (pretend an external update): then row 0
    // must learn it through the local edge 0-1.
    fx.store0.relax(fx.sg0.local_id(1), 3, 2.0);
    const double ops = rc_propagate_local(fx.sg0, fx.store0);
    EXPECT_GT(ops, 0.0);
    EXPECT_NEAR(fx.store0.at(fx.sg0.local_id(0), 3), 3.0, 1e-12);
    EXPECT_FALSE(fx.store0.any_prop_pending());
}

TEST(RcKernels, PropagateChainsAcrossMultipleHops) {
    // Path 0-1-2-3-4 all on one rank: an improvement at one end must walk
    // the whole chain in a single propagate call.
    Cluster cluster(1);
    LocalSubgraph sg(0, std::vector<RankId>(5, 0));
    DistanceStore store(5);
    for (const VertexId v : sg.local_vertices()) {
        store.add_row(v);
    }
    for (VertexId v = 0; v + 1 < 5; ++v) {
        sg.add_local_edge(v, v + 1, 1.0);
    }
    // Seed only vertex 4's row with a fake remote fact: d(4, 0)... rather,
    // set d(4,4)=0 is already there; give row 4 a new column value and
    // propagate: d(4, 0) = 9 (valid upper bound via some imaginary path).
    store.relax(sg.local_id(4), 0, 9.0);
    rc_propagate_local(sg, store);
    // Rows 3..1 learn 0-column values through the chain; row 0 keeps its
    // exact self-distance.
    EXPECT_NEAR(store.at(sg.local_id(3), 0), 10.0, 1e-12);
    EXPECT_NEAR(store.at(sg.local_id(1), 0), 12.0, 1e-12);
    EXPECT_EQ(store.at(sg.local_id(0), 0), 0.0);
}

TEST(RcKernels, FullCycleConverges) {
    TwoRankFixture fx;
    fx.run_ia();
    // Alternate post/exchange/ingest/propagate until quiescent; the fixture
    // must reach the exact path-graph distances.
    for (int step = 0; step < 6; ++step) {
        rc_post_boundary_updates(fx.sg0, fx.store0, fx.cluster);
        rc_post_boundary_updates(fx.sg1, fx.store1, fx.cluster);
        fx.cluster.exchange();
        rc_ingest_updates(fx.sg0, fx.store0, fx.cluster.receive(0));
        rc_ingest_updates(fx.sg1, fx.store1, fx.cluster.receive(1));
        rc_propagate_local(fx.sg0, fx.store0);
        rc_propagate_local(fx.sg1, fx.store1);
    }
    EXPECT_NEAR(fx.store0.at(fx.sg0.local_id(0), 3), 3.0, 1e-12);
    EXPECT_NEAR(fx.store1.at(fx.sg1.local_id(3), 0), 3.0, 1e-12);
    EXPECT_FALSE(fx.store0.any_send_pending());
    EXPECT_FALSE(fx.store1.any_send_pending());
}

}  // namespace
}  // namespace aa
