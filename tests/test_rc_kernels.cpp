// Direct tests of the RC-step kernels (post / ingest / propagate) against a
// hand-built two-rank fixture — the units underneath the engine's rc_step() —
// plus property tests pinning the batched and threaded kernels to the scalar
// reference: bit-identical distance matrices, identical op counts, and
// equivalent dirty-set contents across random graphs, seeds, partitions, and
// thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>

#include "core/ia.hpp"
#include "core/rc.hpp"
#include "graph/generators.hpp"
#include "runtime/cluster.hpp"

namespace aa {
namespace {

// Path graph 0-1-2-3, weights 1; rank 0 owns {0,1}, rank 1 owns {2,3}.
struct TwoRankFixture {
    Cluster cluster{2};
    LocalSubgraph sg0{0, {0, 0, 1, 1}};
    LocalSubgraph sg1{1, {0, 0, 1, 1}};
    DistanceStore store0{4};
    DistanceStore store1{4};

    TwoRankFixture() {
        for (const VertexId v : sg0.local_vertices()) {
            store0.add_row(v);
        }
        for (const VertexId v : sg1.local_vertices()) {
            store1.add_row(v);
        }
        sg0.add_local_edge(0, 1, 1.0);
        sg0.add_local_edge(1, 2, 1.0);
        sg1.add_local_edge(1, 2, 1.0);
        sg1.add_local_edge(2, 3, 1.0);
    }

    void run_ia() {
        ThreadPool pool(1);
        ia_dijkstra_all(sg0, store0, pool);
        ia_dijkstra_all(sg1, store1, pool);
    }
};

TEST(RcKernels, PostSendsOnlyToNeighborRanks) {
    TwoRankFixture fx;
    fx.run_ia();
    const double ops = rc_post_boundary_updates(fx.sg0, fx.store0, fx.cluster);
    EXPECT_GT(ops, 0.0);
    // Rank 0's only boundary vertex is 1 (cut edge 1-2), so exactly one
    // message, to rank 1.
    fx.cluster.exchange();
    const auto inbox1 = fx.cluster.receive(1);
    ASSERT_EQ(inbox1.size(), 1u);
    EXPECT_EQ(inbox1[0].tag, MessageTag::BoundaryDvUpdate);
    const auto blocks = decode_boundary_blocks(inbox1[0].bytes());
    // Interior row 0's changes are drained but not shipped.
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks[0].vertex, 1u);
    EXPECT_FALSE(fx.store0.any_send_pending());
}

TEST(RcKernels, InteriorRowChangesAreDrainedSilently) {
    TwoRankFixture fx;
    // Only touch interior row 0 (global 0 has no cut edges).
    fx.store0.relax(fx.sg0.local_id(0), 3, 9.0);
    EXPECT_TRUE(fx.store0.any_send_pending());
    rc_post_boundary_updates(fx.sg0, fx.store0, fx.cluster);
    EXPECT_FALSE(fx.store0.any_send_pending());
    EXPECT_FALSE(fx.cluster.has_pending_messages());
}

TEST(RcKernels, IngestRelaxesThroughCutEdges) {
    TwoRankFixture fx;
    fx.run_ia();
    // Rank 1 announces boundary vertex 2's distances.
    rc_post_boundary_updates(fx.sg1, fx.store1, fx.cluster);
    fx.cluster.exchange();
    const auto inbox0 = fx.cluster.receive(0);
    ASSERT_FALSE(inbox0.empty());
    const double ops = rc_ingest_updates(fx.sg0, fx.store0, inbox0);
    EXPECT_GT(ops, 0.0);
    // d(1, 3) <= w(1,2) + d(2,3) = 2 now known on rank 0.
    EXPECT_NEAR(fx.store0.at(fx.sg0.local_id(1), 3), 2.0, 1e-12);
}

TEST(RcKernels, IngestIgnoresForeignTags) {
    TwoRankFixture fx;
    fx.run_ia();
    Message odd;
    odd.from = 1;
    odd.to = 0;
    odd.tag = MessageTag::Control;
    odd.payload = Message::share(std::vector<std::byte>(8));
    const double ops = rc_ingest_updates(fx.sg0, fx.store0, {odd});
    EXPECT_EQ(ops, 0.0);
}

TEST(RcKernels, PropagateReachesLocalFixpoint) {
    TwoRankFixture fx;
    fx.run_ia();
    // Inject an improvement at row 1 (pretend an external update): then row 0
    // must learn it through the local edge 0-1.
    fx.store0.relax(fx.sg0.local_id(1), 3, 2.0);
    const double ops = rc_propagate_local(fx.sg0, fx.store0);
    EXPECT_GT(ops, 0.0);
    EXPECT_NEAR(fx.store0.at(fx.sg0.local_id(0), 3), 3.0, 1e-12);
    EXPECT_FALSE(fx.store0.any_prop_pending());
}

TEST(RcKernels, PropagateChainsAcrossMultipleHops) {
    // Path 0-1-2-3-4 all on one rank: an improvement at one end must walk
    // the whole chain in a single propagate call.
    Cluster cluster(1);
    LocalSubgraph sg(0, std::vector<RankId>(5, 0));
    DistanceStore store(5);
    for (const VertexId v : sg.local_vertices()) {
        store.add_row(v);
    }
    for (VertexId v = 0; v + 1 < 5; ++v) {
        sg.add_local_edge(v, v + 1, 1.0);
    }
    // Seed only vertex 4's row with a fake remote fact: d(4, 0)... rather,
    // set d(4,4)=0 is already there; give row 4 a new column value and
    // propagate: d(4, 0) = 9 (valid upper bound via some imaginary path).
    store.relax(sg.local_id(4), 0, 9.0);
    rc_propagate_local(sg, store);
    // Rows 3..1 learn 0-column values through the chain; row 0 keeps its
    // exact self-distance.
    EXPECT_NEAR(store.at(sg.local_id(3), 0), 10.0, 1e-12);
    EXPECT_NEAR(store.at(sg.local_id(1), 0), 12.0, 1e-12);
    EXPECT_EQ(store.at(sg.local_id(0), 0), 0.0);
}

TEST(RcKernels, FullCycleConverges) {
    TwoRankFixture fx;
    fx.run_ia();
    // Alternate post/exchange/ingest/propagate until quiescent; the fixture
    // must reach the exact path-graph distances.
    for (int step = 0; step < 6; ++step) {
        rc_post_boundary_updates(fx.sg0, fx.store0, fx.cluster);
        rc_post_boundary_updates(fx.sg1, fx.store1, fx.cluster);
        fx.cluster.exchange();
        rc_ingest_updates(fx.sg0, fx.store0, fx.cluster.receive(0));
        rc_ingest_updates(fx.sg1, fx.store1, fx.cluster.receive(1));
        rc_propagate_local(fx.sg0, fx.store0);
        rc_propagate_local(fx.sg1, fx.store1);
    }
    EXPECT_NEAR(fx.store0.at(fx.sg0.local_id(0), 3), 3.0, 1e-12);
    EXPECT_NEAR(fx.store1.at(fx.sg1.local_id(3), 0), 3.0, 1e-12);
    EXPECT_FALSE(fx.store0.any_send_pending());
    EXPECT_FALSE(fx.store1.any_send_pending());
}

// ---------------------------------------------------------------------------
// Kernel-equivalence property tests.
//
// A MiniCluster distributes one random graph across P ranks with a random
// ownership map, runs IA to seed the distance stores, and then drives the RC
// post/exchange/ingest/propagate cycle to its global fixpoint with one of the
// three kernel modes. All modes execute the same relaxation schedule, so they
// must agree bit for bit — on every matrix entry, on every op count, and on
// the dirty-set contents in between kernels.

enum class Mode { Scalar, Batched, Threaded };

struct RcOps {
    double post{0};
    double ingest{0};
    double propagate{0};
};

struct MiniCluster {
    Cluster cluster;
    std::vector<LocalSubgraph> sgs;
    std::vector<DistanceStore> stores;

    MiniCluster(const DynamicGraph& g, const std::vector<RankId>& owners,
                std::uint32_t num_ranks)
        : cluster(num_ranks) {
        const std::size_t n = g.num_vertices();
        for (RankId r = 0; r < num_ranks; ++r) {
            sgs.emplace_back(r, owners);
            stores.emplace_back(n);
            for (const VertexId v : sgs[r].local_vertices()) {
                stores[r].add_row(v);
            }
        }
        for (VertexId u = 0; u < n; ++u) {
            for (const Neighbor& nb : g.neighbors(u)) {
                if (u >= nb.to) {
                    continue;  // undirected: place each edge once
                }
                sgs[owners[u]].add_local_edge(u, nb.to, nb.weight);
                if (owners[nb.to] != owners[u]) {
                    sgs[owners[nb.to]].add_local_edge(u, nb.to, nb.weight);
                }
            }
        }
        ThreadPool ia_pool(1);
        for (RankId r = 0; r < num_ranks; ++r) {
            ia_dijkstra_all(sgs[r], stores[r], ia_pool);
        }
    }
};

std::vector<RankId> random_owners(std::size_t n, std::uint32_t num_ranks, Rng& rng) {
    std::vector<RankId> owners(n);
    for (std::size_t v = 0; v < n; ++v) {
        // Guarantee every rank owns at least one vertex so no rank is empty.
        owners[v] = v < num_ranks ? static_cast<RankId>(v)
                                  : static_cast<RankId>(rng.uniform(num_ranks));
    }
    return owners;
}

// Drive post/exchange/ingest/propagate until globally quiescent. The Threaded
// mode passes parallel_grain = 1 so even these small graphs exercise the
// parallel_for branches in both rc_ingest_updates and rc_propagate_local.
// `format` selects the wire format for post and ingest alike; `window_bytes`
// feeds the ingest windowing (results must be independent of both).
RcOps run_rc_fixpoint(MiniCluster& mc, Mode mode, std::size_t threads = 1,
                      BoundaryWireFormat format = BoundaryWireFormat::V2Soa,
                      std::size_t window_bytes = kRcIngestWindowBytes) {
    std::unique_ptr<ThreadPool> pool;
    if (mode == Mode::Threaded) {
        pool = std::make_unique<ThreadPool>(threads);
    }
    RcOps ops;
    const std::uint32_t num_ranks = mc.cluster.num_ranks();
    bool converged = false;
    for (int step = 0; step < 100 && !converged; ++step) {
        for (RankId r = 0; r < num_ranks; ++r) {
            ops.post += rc_post_boundary_updates(mc.sgs[r], mc.stores[r], mc.cluster,
                                                 format);
        }
        if (!mc.cluster.has_pending_messages()) {
            converged = true;
            break;
        }
        mc.cluster.exchange();
        for (RankId r = 0; r < num_ranks; ++r) {
            const auto inbox = mc.cluster.receive(r);
            switch (mode) {
                case Mode::Scalar:
                    ops.ingest += rc_ingest_updates_scalar(mc.sgs[r], mc.stores[r],
                                                           inbox, format);
                    ops.propagate += rc_propagate_local_scalar(mc.sgs[r], mc.stores[r]);
                    break;
                case Mode::Batched:
                    ops.ingest += rc_ingest_updates(mc.sgs[r], mc.stores[r], inbox,
                                                    format, nullptr,
                                                    kRcIngestParallelGrain,
                                                    window_bytes);
                    ops.propagate += rc_propagate_local(mc.sgs[r], mc.stores[r]);
                    break;
                case Mode::Threaded:
                    ops.ingest += rc_ingest_updates(mc.sgs[r], mc.stores[r], inbox,
                                                    format, pool.get(),
                                                    /*parallel_grain=*/1, window_bytes);
                    ops.propagate += rc_propagate_local(mc.sgs[r], mc.stores[r],
                                                        pool.get(), /*parallel_grain=*/1);
                    break;
            }
        }
    }
    EXPECT_TRUE(converged) << "RC cycle failed to converge within 100 steps";
    return ops;
}

// Count entries whose bit patterns differ between two runs (0 == identical).
std::size_t matrix_mismatches(const MiniCluster& a, const MiniCluster& b) {
    std::size_t bad = 0;
    for (std::size_t r = 0; r < a.stores.size(); ++r) {
        EXPECT_EQ(a.stores[r].num_rows(), b.stores[r].num_rows());
        for (LocalId l = 0; l < a.stores[r].num_rows(); ++l) {
            const auto ra = a.stores[r].row(l);
            const auto rb = b.stores[r].row(l);
            if (std::memcmp(ra.data(), rb.data(), ra.size_bytes()) != 0) {
                for (std::size_t c = 0; c < ra.size(); ++c) {
                    bad += std::memcmp(&ra[c], &rb[c], sizeof(Weight)) != 0;
                }
            }
        }
    }
    return bad;
}

void expect_equivalent(MiniCluster& reference, MiniCluster& candidate, Mode mode,
                       std::size_t threads, const char* what,
                       BoundaryWireFormat ref_format = BoundaryWireFormat::V1Aos,
                       BoundaryWireFormat cand_format = BoundaryWireFormat::V2Soa,
                       std::size_t cand_window = kRcIngestWindowBytes) {
    // Reference: the scalar per-element kernels over the v1 wire format —
    // the original semantics every optimized configuration must reproduce.
    const RcOps ref = run_rc_fixpoint(reference, Mode::Scalar, 1, ref_format);
    const RcOps got = run_rc_fixpoint(candidate, mode, threads, cand_format,
                                      cand_window);
    EXPECT_EQ(ref.post, got.post) << what;
    EXPECT_EQ(ref.ingest, got.ingest) << what;
    EXPECT_EQ(ref.propagate, got.propagate) << what;
    EXPECT_EQ(matrix_mismatches(reference, candidate), 0u) << what;
    for (RankId r = 0; r < candidate.cluster.num_ranks(); ++r) {
        EXPECT_FALSE(candidate.stores[r].any_prop_pending()) << what;
        EXPECT_FALSE(candidate.stores[r].any_send_pending()) << what;
    }
}

TEST(RcKernelEquivalence, BatchedMatchesScalarOnRmat) {
    for (const std::uint64_t seed : {11u, 137u, 4242u}) {
        Rng rng(seed);
        const DynamicGraph g = rmat(8, 700, rng, {}, {0.5, 2.0});
        const auto owners = random_owners(g.num_vertices(), 4, rng);
        MiniCluster scalar(g, owners, 4);
        MiniCluster batched(g, owners, 4);
        expect_equivalent(scalar, batched, Mode::Batched, 1, "rmat batched");
    }
}

TEST(RcKernelEquivalence, BatchedMatchesScalarOnGnm) {
    for (const std::uint64_t seed : {3u, 77u}) {
        Rng rng(seed);
        const DynamicGraph g = erdos_renyi_gnm(300, 900, rng, {0.25, 4.0});
        const auto owners = random_owners(g.num_vertices(), 5, rng);
        MiniCluster scalar(g, owners, 5);
        MiniCluster batched(g, owners, 5);
        expect_equivalent(scalar, batched, Mode::Batched, 1, "gnm batched");
    }
}

TEST(RcKernelEquivalence, ThreadedMatchesScalarAcrossThreadCounts) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        Rng rng(900 + threads);
        const DynamicGraph g = rmat(8, 700, rng, {}, {0.5, 2.0});
        const auto owners = random_owners(g.num_vertices(), 4, rng);
        MiniCluster scalar(g, owners, 4);
        MiniCluster threaded(g, owners, 4);
        expect_equivalent(scalar, threaded, Mode::Threaded, threads, "rmat threaded");
    }
}

TEST(RcKernelEquivalence, ThreadedMatchesScalarOnGnm) {
    Rng rng(5150);
    const DynamicGraph g = erdos_renyi_gnm(300, 900, rng, {0.25, 4.0});
    const auto owners = random_owners(g.num_vertices(), 3, rng);
    MiniCluster scalar(g, owners, 3);
    MiniCluster threaded(g, owners, 3);
    expect_equivalent(scalar, threaded, Mode::Threaded, 8, "gnm threaded");
}

TEST(RcKernelEquivalence, IngestDirtySetsMatchScalar) {
    // One post/exchange/ingest round, then compare the *contents* of every
    // row's prop and send dirty sets (as sets: the batched kernel may record
    // a row's improved columns in a different order than per-element relax).
    Rng rng(31337);
    const DynamicGraph g = rmat(8, 700, rng, {}, {0.5, 2.0});
    const auto owners = random_owners(g.num_vertices(), 4, rng);
    MiniCluster scalar(g, owners, 4);
    MiniCluster batched(g, owners, 4);
    ThreadPool pool(4);

    for (RankId r = 0; r < 4; ++r) {
        rc_post_boundary_updates(scalar.sgs[r], scalar.stores[r], scalar.cluster);
        rc_post_boundary_updates(batched.sgs[r], batched.stores[r], batched.cluster);
    }
    scalar.cluster.exchange();
    batched.cluster.exchange();
    for (RankId r = 0; r < 4; ++r) {
        const double ops_s = rc_ingest_updates_scalar(scalar.sgs[r], scalar.stores[r],
                                                      scalar.cluster.receive(r));
        const double ops_b = rc_ingest_updates(batched.sgs[r], batched.stores[r],
                                               batched.cluster.receive(r),
                                               BoundaryWireFormat::V2Soa, &pool,
                                               /*parallel_grain=*/1);
        EXPECT_EQ(ops_s, ops_b);
        for (LocalId l = 0; l < scalar.stores[r].num_rows(); ++l) {
            const auto sp = scalar.stores[r].take_prop(l);
            const auto bp = batched.stores[r].take_prop(l);
            std::vector<VertexId> s_prop(sp.begin(), sp.end());
            std::vector<VertexId> b_prop(bp.begin(), bp.end());
            std::sort(s_prop.begin(), s_prop.end());
            std::sort(b_prop.begin(), b_prop.end());
            EXPECT_EQ(s_prop, b_prop) << "rank " << r << " row " << l;
            const auto ss = scalar.stores[r].take_send(l);
            const auto bs = batched.stores[r].take_send(l);
            std::vector<VertexId> s_send(ss.begin(), ss.end());
            std::vector<VertexId> b_send(bs.begin(), bs.end());
            std::sort(s_send.begin(), s_send.end());
            std::sort(b_send.begin(), b_send.end());
            EXPECT_EQ(s_send, b_send) << "rank " << r << " row " << l;
        }
    }
    EXPECT_EQ(matrix_mismatches(scalar, batched), 0u);
}

// ---------------------------------------------------------------------------
// Wire-format equivalence: the v2 SoA payload (and the SIMD sweeps it feeds)
// must reproduce the v1 + scalar reference bit for bit.

TEST(RcWireFormat, FormatModeLatticeMatchesScalarV1) {
    // Every (format, mode) cell against the scalar+v1 reference, over a few
    // seeds: identical op counts and bit-identical matrices.
    const BoundaryWireFormat formats[] = {BoundaryWireFormat::V1Aos,
                                          BoundaryWireFormat::V2Soa};
    for (const std::uint64_t seed : {21u, 1234u}) {
        for (const BoundaryWireFormat format : formats) {
            for (const Mode mode : {Mode::Batched, Mode::Threaded}) {
                Rng rng(seed);
                const DynamicGraph g = rmat(8, 700, rng, {}, {0.5, 2.0});
                const auto owners = random_owners(g.num_vertices(), 4, rng);
                MiniCluster reference(g, owners, 4);
                MiniCluster candidate(g, owners, 4);
                expect_equivalent(reference, candidate, mode, 4, "format lattice",
                                  BoundaryWireFormat::V1Aos, format);
            }
        }
    }
}

TEST(RcWireFormat, ScalarKernelAgreesAcrossFormats) {
    // The scalar reference itself must be format-independent (the canonical
    // ascending post order makes the payload entry order identical).
    Rng rng(808);
    const DynamicGraph g = erdos_renyi_gnm(300, 900, rng, {0.25, 4.0});
    const auto owners = random_owners(g.num_vertices(), 5, rng);
    MiniCluster v1(g, owners, 5);
    MiniCluster v2(g, owners, 5);
    const RcOps ops1 = run_rc_fixpoint(v1, Mode::Scalar, 1, BoundaryWireFormat::V1Aos);
    const RcOps ops2 = run_rc_fixpoint(v2, Mode::Scalar, 1, BoundaryWireFormat::V2Soa);
    EXPECT_EQ(ops1.post, ops2.post);
    EXPECT_EQ(ops1.ingest, ops2.ingest);
    EXPECT_EQ(ops1.propagate, ops2.propagate);
    EXPECT_EQ(matrix_mismatches(v1, v2), 0u);
}

TEST(RcWireFormat, DirtyAppendOrderIdenticalAcrossFormats) {
    // Stronger than IngestDirtySetsMatchScalar: after one post/exchange/
    // ingest round the prop and send worklists must match in *exact append
    // order* between a v1 and a v2 ingest — the property that keeps every
    // later drain (and therefore the whole downstream schedule) identical.
    // Both formats deliver ascending columns and relax_batch/_soa record
    // improvements in entry order, so the appended sequences coincide.
    Rng rng(271828);
    const DynamicGraph g = rmat(8, 700, rng, {}, {0.5, 2.0});
    const auto owners = random_owners(g.num_vertices(), 4, rng);
    MiniCluster v1(g, owners, 4);
    MiniCluster v2(g, owners, 4);
    for (RankId r = 0; r < 4; ++r) {
        rc_post_boundary_updates(v1.sgs[r], v1.stores[r], v1.cluster,
                                 BoundaryWireFormat::V1Aos);
        rc_post_boundary_updates(v2.sgs[r], v2.stores[r], v2.cluster,
                                 BoundaryWireFormat::V2Soa);
    }
    v1.cluster.exchange();
    v2.cluster.exchange();
    for (RankId r = 0; r < 4; ++r) {
        rc_ingest_updates(v1.sgs[r], v1.stores[r], v1.cluster.receive(r),
                          BoundaryWireFormat::V1Aos);
        rc_ingest_updates(v2.sgs[r], v2.stores[r], v2.cluster.receive(r),
                          BoundaryWireFormat::V2Soa);
        for (LocalId l = 0; l < v1.stores[r].num_rows(); ++l) {
            const auto p1 = v1.stores[r].take_prop(l);
            const auto p2 = v2.stores[r].take_prop(l);
            EXPECT_TRUE(std::equal(p1.begin(), p1.end(), p2.begin(), p2.end()))
                << "prop order, rank " << r << " row " << l;
            const auto s1 = v1.stores[r].take_send(l);
            const auto s2 = v2.stores[r].take_send(l);
            EXPECT_TRUE(std::equal(s1.begin(), s1.end(), s2.begin(), s2.end()))
                << "send order, rank " << r << " row " << l;
        }
    }
    EXPECT_EQ(matrix_mismatches(v1, v2), 0u);
}

TEST(RcWireFormat, TinyIngestWindowIsBitIdentical) {
    // A 256-byte window forces a window split at nearly every block; results
    // and op counts must not move (satellite: windowing can never change
    // results).
    Rng rng(99);
    const DynamicGraph g = rmat(8, 700, rng, {}, {0.5, 2.0});
    const auto owners = random_owners(g.num_vertices(), 4, rng);
    MiniCluster reference(g, owners, 4);
    MiniCluster tiny(g, owners, 4);
    expect_equivalent(reference, tiny, Mode::Batched, 1, "tiny window",
                      BoundaryWireFormat::V1Aos, BoundaryWireFormat::V2Soa,
                      /*cand_window=*/256);
}

TEST(RcWireFormat, SimdToggleIsBitIdentical) {
    // With AA_ENABLE_SIMD built in and AVX2 present this pins the vector
    // sweeps to the scalar fallback bit for bit; otherwise both runs take the
    // scalar path and the test degenerates to determinism (still worth
    // keeping: it guards the toggle plumbing).
    Rng rng(512);
    const DynamicGraph g = erdos_renyi_gnm(300, 900, rng, {0.25, 4.0});
    const auto owners = random_owners(g.num_vertices(), 4, rng);
    MiniCluster simd_on(g, owners, 4);
    MiniCluster simd_off(g, owners, 4);
    for (auto& store : simd_off.stores) {
        store.set_simd_enabled(false);
    }
    const RcOps on = run_rc_fixpoint(simd_on, Mode::Batched);
    const RcOps off = run_rc_fixpoint(simd_off, Mode::Batched);
    EXPECT_EQ(on.post, off.post);
    EXPECT_EQ(on.ingest, off.ingest);
    EXPECT_EQ(on.propagate, off.propagate);
    EXPECT_EQ(matrix_mismatches(simd_on, simd_off), 0u);
}

}  // namespace
}  // namespace aa
