#include <gtest/gtest.h>

#include <set>

#include "graph/community.hpp"
#include "graph/generators.hpp"

namespace aa {
namespace {

TEST(Modularity, SingleCommunityIsZero) {
    DynamicGraph g(4);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    const std::vector<std::uint32_t> all_one(4, 0);
    EXPECT_NEAR(modularity(g, all_one), 0.0, 1e-12);
}

TEST(Modularity, TwoCliquesPerfectSplit) {
    // Two triangles joined by one edge; the natural split has high modularity.
    DynamicGraph g(6);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(0, 2);
    g.add_edge(3, 4);
    g.add_edge(4, 5);
    g.add_edge(3, 5);
    g.add_edge(2, 3);
    const std::vector<std::uint32_t> split{0, 0, 0, 1, 1, 1};
    EXPECT_GT(modularity(g, split), 0.3);
    const std::vector<std::uint32_t> bad{0, 1, 0, 1, 0, 1};
    EXPECT_LT(modularity(g, bad), modularity(g, split));
}

TEST(Louvain, RecoversTwoCliques) {
    DynamicGraph g(6);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(0, 2);
    g.add_edge(3, 4);
    g.add_edge(4, 5);
    g.add_edge(3, 5);
    g.add_edge(2, 3);
    Rng rng(1);
    const auto result = louvain(g, rng);
    EXPECT_EQ(result.num_communities, 2u);
    EXPECT_EQ(result.membership[0], result.membership[1]);
    EXPECT_EQ(result.membership[0], result.membership[2]);
    EXPECT_EQ(result.membership[3], result.membership[4]);
    EXPECT_EQ(result.membership[3], result.membership[5]);
    EXPECT_NE(result.membership[0], result.membership[3]);
}

TEST(Louvain, RecoversPlantedPartition) {
    Rng gen_rng(2);
    std::vector<std::uint32_t> truth;
    const auto g = planted_partition(150, 3, 0.35, 0.01, gen_rng, &truth);
    Rng rng(3);
    const auto result = louvain(g, rng);
    // Modularity should be decent and community count close to planted.
    EXPECT_GT(result.modularity, 0.4);
    EXPECT_GE(result.num_communities, 2u);
    EXPECT_LE(result.num_communities, 6u);
}

TEST(Louvain, MembershipIsCompact) {
    Rng gen_rng(4);
    const auto g = barabasi_albert(100, 2, gen_rng);
    Rng rng(5);
    const auto result = louvain(g, rng);
    std::set<std::uint32_t> ids(result.membership.begin(), result.membership.end());
    EXPECT_EQ(ids.size(), result.num_communities);
    EXPECT_EQ(*ids.rbegin(), result.num_communities - 1);
}

TEST(Louvain, EmptyEdgeSet) {
    DynamicGraph g(5);
    Rng rng(6);
    const auto result = louvain(g, rng);
    EXPECT_EQ(result.num_communities, 5u);  // every vertex its own community
}

TEST(Louvain, ReportedModularityMatchesRecomputed) {
    Rng gen_rng(7);
    const auto g = planted_partition(80, 4, 0.3, 0.02, gen_rng);
    Rng rng(8);
    const auto result = louvain(g, rng);
    EXPECT_NEAR(result.modularity, modularity(g, result.membership), 1e-9);
}

TEST(Louvain, WeightedEdgesRespected) {
    // Two pairs strongly tied internally, weak ties across.
    DynamicGraph g(4);
    g.add_edge(0, 1, 10.0);
    g.add_edge(2, 3, 10.0);
    g.add_edge(1, 2, 0.1);
    g.add_edge(0, 3, 0.1);
    Rng rng(9);
    const auto result = louvain(g, rng);
    EXPECT_EQ(result.membership[0], result.membership[1]);
    EXPECT_EQ(result.membership[2], result.membership[3]);
    EXPECT_NE(result.membership[0], result.membership[2]);
}

}  // namespace
}  // namespace aa
