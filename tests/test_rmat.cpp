#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/metrics.hpp"

namespace aa {
namespace {

TEST(Rmat, SizeAndEdgeCount) {
    Rng rng(1);
    const auto g = rmat(10, 4000, rng);
    EXPECT_EQ(g.num_vertices(), 1024u);
    EXPECT_EQ(g.num_edges(), 4000u);
}

TEST(Rmat, Deterministic) {
    Rng a(42);
    Rng b(42);
    EXPECT_EQ(rmat(8, 800, a).edges(), rmat(8, 800, b).edges());
}

TEST(Rmat, SkewedDegreeDistribution) {
    Rng rng(2);
    const auto g = rmat(12, 20000, rng);
    const auto hist = degree_histogram(g);
    // The default (0.57, .19, .19, .05) parameters concentrate edges on
    // low-id vertices: expect a heavy tail (hubs much larger than average).
    const double avg = average_degree(g);
    EXPECT_GT(static_cast<double>(hist.size() - 1), 8 * avg);
}

TEST(Rmat, UniformParametersApproachErdosRenyi) {
    Rng rng(3);
    const auto g = rmat(10, 4000, rng, RmatParams{0.25, 0.25, 0.25, 0.25});
    const auto hist = degree_histogram(g);
    // Uniform quadrant probabilities: no heavy tail, max degree close to
    // the Poisson range.
    const double avg = average_degree(g);
    EXPECT_LT(static_cast<double>(hist.size() - 1), 6 * avg);
}

TEST(Rmat, WeightsInRange) {
    Rng rng(4);
    const auto g = rmat(8, 500, rng, RmatParams{}, WeightRange{2.0, 3.0});
    for (const Edge& e : g.edges()) {
        EXPECT_GE(e.weight, 2.0);
        EXPECT_LT(e.weight, 3.0);
    }
}

TEST(Rmat, RejectsBadParameters) {
    Rng rng(5);
    EXPECT_DEATH(rmat(8, 100, rng, RmatParams{0.9, 0.2, 0.2, 0.2}), "sum to 1");
    EXPECT_DEATH(rmat(0, 100, rng), "scale");
}

}  // namespace
}  // namespace aa
