// ExecutionBackend contract tests.
//
// The load-bearing property is the determinism contract from
// runtime/backend.hpp: for a fixed seed and config, the threaded backend must
// reproduce the sequential backend *bit-identically* — every distance, every
// closeness score, the simulated clock, and the telemetry span stream — no
// matter how the OS schedules the rank threads. The lattice below exercises
// it across rank counts, both communication schedules and both IA kernels,
// with a mid-RC vertex-addition batch in every run.
#include <gtest/gtest.h>

#include <atomic>
#include <tuple>
#include <vector>

#include "core/engine.hpp"
#include "core/strategies.hpp"
#include "graph/generators.hpp"
#include "runtime/backend.hpp"

namespace aa {
namespace {

TEST(BackendBasics, NamesRoundTripThroughParse) {
    EXPECT_EQ(backend_kind_name(BackendKind::Sequential), "seq");
    EXPECT_EQ(backend_kind_name(BackendKind::Threaded), "threaded");
    for (const BackendKind kind :
         {BackendKind::Sequential, BackendKind::Threaded}) {
        BackendKind parsed{};
        ASSERT_TRUE(parse_backend_kind(backend_kind_name(kind), parsed));
        EXPECT_EQ(parsed, kind);
    }
}

TEST(BackendBasics, ParseRejectsUnknownSpellingsUntouched) {
    BackendKind kind = BackendKind::Threaded;
    EXPECT_FALSE(parse_backend_kind("sequential", kind));
    EXPECT_FALSE(parse_backend_kind("Threaded", kind));
    EXPECT_FALSE(parse_backend_kind("", kind));
    EXPECT_FALSE(parse_backend_kind("threads", kind));
    EXPECT_EQ(kind, BackendKind::Threaded);  // left untouched on failure
}

TEST(BackendBasics, FactoryProducesMatchingKinds) {
    const auto seq = make_backend(BackendKind::Sequential, 4);
    EXPECT_EQ(seq->name(), "seq");
    EXPECT_FALSE(seq->concurrent());
    const auto threaded = make_backend(BackendKind::Threaded, 4);
    EXPECT_EQ(threaded->name(), "threaded");
    EXPECT_TRUE(threaded->concurrent());
}

TEST(BackendBasics, SequentialRunsRanksInAscendingOrder) {
    SequentialBackend backend;
    std::vector<RankId> order;
    backend.run_ranks(5, [&](RankId r) { order.push_back(r); });
    EXPECT_EQ(order, (std::vector<RankId>{0, 1, 2, 3, 4}));
}

TEST(BackendBasics, ThreadedRunsEveryRankExactlyOnceWithBarrier) {
    ThreadedBackend backend(4);
    for (int round = 0; round < 50; ++round) {
        std::vector<int> hits(8, 0);
        std::atomic<int> total{0};
        backend.run_ranks(hits.size(), [&](RankId r) {
            hits[r] += 1;  // distinct slots: racy only if a rank ran twice
            total.fetch_add(1, std::memory_order_relaxed);
        });
        // Barrier semantics: all writes are visible after run_ranks returns.
        EXPECT_EQ(total.load(), 8);
        for (const int h : hits) {
            EXPECT_EQ(h, 1);
        }
    }
}

// ---------------------------------------------------------------------------
// Determinism lattice: seq vs threaded, bit for bit.
// ---------------------------------------------------------------------------

struct RunResult {
    std::vector<std::vector<Weight>> matrix;
    ClosenessScores scores;
    double sim_seconds{0};
    std::size_t rc_steps{0};
    std::vector<MetricSpan> spans;
};

RunResult run_scenario(BackendKind backend, std::uint32_t ranks,
                       CommSchedule schedule, IaKernel kernel,
                       std::size_t backend_threads = 0) {
    Rng rng(987);
    DynamicGraph g = barabasi_albert(72, 2, rng, WeightRange{1.0, 3.0});

    EngineConfig config;
    config.num_ranks = ranks;
    config.ia_threads = 2;
    config.ia_kernel = kernel;
    config.schedule = schedule;
    config.seed = 0xBACC01 + ranks;
    config.backend = backend;
    config.backend_threads = backend_threads;
    config.enable_metrics = true;

    AnytimeEngine engine(g, config);
    engine.initialize();
    engine.run_rc_steps(2);

    // Mid-RC addition batch: the dynamic-update loops (extend, broadcast
    // apply, propagate) all run on the backend too.
    GrowthConfig gc;
    gc.num_new = 5;
    gc.communities = 2;
    gc.intra_edges = 2;
    gc.host_edges = 2;
    Rng batch_rng(4242);
    const auto batch = grow_batch(g.num_vertices(), gc, batch_rng);
    RoundRobinPS strategy;
    engine.apply_addition(batch, strategy);
    engine.run_to_quiescence();

    RunResult result;
    result.matrix = engine.full_distance_matrix();
    result.scores = engine.closeness();
    result.sim_seconds = engine.sim_seconds();
    result.rc_steps = engine.rc_steps_completed();
    result.spans = engine.metrics().spans();
    return result;
}

void expect_bit_identical(const RunResult& seq, const RunResult& threaded) {
    // EXPECT_EQ on doubles is exact comparison — bit-identical, not "close".
    EXPECT_EQ(seq.sim_seconds, threaded.sim_seconds);
    EXPECT_EQ(seq.rc_steps, threaded.rc_steps);
    ASSERT_EQ(seq.matrix.size(), threaded.matrix.size());
    for (std::size_t v = 0; v < seq.matrix.size(); ++v) {
        ASSERT_EQ(seq.matrix[v], threaded.matrix[v]) << "row " << v;
    }
    ASSERT_EQ(seq.scores.closeness, threaded.scores.closeness);
    ASSERT_EQ(seq.scores.reachable, threaded.scores.reachable);
    // Telemetry: same spans, in the same order, with the same simulated
    // bounds and op counts (per-rank sinks merged in rank order).
    ASSERT_EQ(seq.spans.size(), threaded.spans.size());
    for (std::size_t i = 0; i < seq.spans.size(); ++i) {
        const MetricSpan& a = seq.spans[i];
        const MetricSpan& b = threaded.spans[i];
        EXPECT_EQ(a.name, b.name) << "span " << i;
        EXPECT_EQ(a.rank, b.rank) << "span " << i;
        EXPECT_EQ(a.step, b.step) << "span " << i;
        EXPECT_EQ(a.t_begin, b.t_begin) << "span " << i << " (" << a.name << ")";
        EXPECT_EQ(a.t_end, b.t_end) << "span " << i << " (" << a.name << ")";
        EXPECT_EQ(a.ops, b.ops) << "span " << i << " (" << a.name << ")";
    }
}

using Param = std::tuple<std::uint32_t /*ranks*/, CommSchedule, IaKernel>;

class BackendDeterminism : public ::testing::TestWithParam<Param> {};

TEST_P(BackendDeterminism, ThreadedMatchesSequentialBitIdentically) {
    const auto [ranks, schedule, kernel] = GetParam();
    const RunResult seq =
        run_scenario(BackendKind::Sequential, ranks, schedule, kernel);
    const RunResult threaded =
        run_scenario(BackendKind::Threaded, ranks, schedule, kernel);
    expect_bit_identical(seq, threaded);
}

TEST_P(BackendDeterminism, ThreadedWithFewerWorkersThanRanksStillMatches) {
    const auto [ranks, schedule, kernel] = GetParam();
    const RunResult seq =
        run_scenario(BackendKind::Sequential, ranks, schedule, kernel);
    const RunResult threaded = run_scenario(BackendKind::Threaded, ranks,
                                            schedule, kernel,
                                            /*backend_threads=*/2);
    expect_bit_identical(seq, threaded);
}

INSTANTIATE_TEST_SUITE_P(
    Lattice, BackendDeterminism,
    ::testing::Combine(::testing::Values(2u, 4u, 8u),
                       ::testing::Values(CommSchedule::SerializedAllToAll,
                                         CommSchedule::ParallelRounds),
                       ::testing::Values(IaKernel::Dijkstra,
                                         IaKernel::DeltaStepping)),
    [](const ::testing::TestParamInfo<Param>& p) {
        return "r" + std::to_string(std::get<0>(p.param)) +
               (std::get<1>(p.param) == CommSchedule::SerializedAllToAll
                    ? "_ser"
                    : "_par") +
               (std::get<2>(p.param) == IaKernel::DeltaStepping ? "_ds"
                                                                : "_dij");
    });

// Repartition-S moves whole rows between ranks; its seed and re-mark loops
// run on the backend, so pin that path separately (RoundRobinPS above never
// exercises it).
TEST(BackendDeterminismRepartition, ThreadedMatchesSequentialBitIdentically) {
    for (const CommSchedule schedule :
         {CommSchedule::SerializedAllToAll, CommSchedule::ParallelRounds}) {
        Rng rng(321);
        DynamicGraph g = planted_partition(60, 4, 0.2, 0.02, rng);
        RunResult results[2];
        for (const BackendKind backend :
             {BackendKind::Sequential, BackendKind::Threaded}) {
            EngineConfig config;
            config.num_ranks = 4;
            config.schedule = schedule;
            config.seed = 0xC0FFEE;
            config.backend = backend;
            config.enable_metrics = true;
            AnytimeEngine engine(g, config);
            engine.initialize();
            engine.run_rc_steps(1);
            GrowthConfig gc;
            gc.num_new = 8;
            gc.communities = 2;
            gc.intra_edges = 2;
            gc.host_edges = 2;
            Rng batch_rng(777);
            const auto batch = grow_batch(g.num_vertices(), gc, batch_rng);
            RepartitionS strategy;
            engine.apply_addition(batch, strategy);
            engine.run_to_quiescence();
            RunResult& result =
                results[backend == BackendKind::Threaded ? 1 : 0];
            result.matrix = engine.full_distance_matrix();
            result.scores = engine.closeness();
            result.sim_seconds = engine.sim_seconds();
            result.rc_steps = engine.rc_steps_completed();
            result.spans = engine.metrics().spans();
        }
        expect_bit_identical(results[0], results[1]);
    }
}

}  // namespace
}  // namespace aa
