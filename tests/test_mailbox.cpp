#include <gtest/gtest.h>

#include "runtime/alltoall.hpp"
#include "runtime/mailbox.hpp"

namespace aa {
namespace {

Message make(RankId from, RankId to, std::size_t bytes = 8) {
    Message m;
    m.from = from;
    m.to = to;
    m.tag = MessageTag::Control;
    m.payload = Message::share(std::vector<std::byte>(bytes));
    return m;
}

TEST(Mailbox, PostAndDeliverAll) {
    MailboxSystem mail(3);
    EXPECT_FALSE(mail.has_pending());
    mail.post(make(0, 1));
    mail.post(make(0, 2));
    mail.post(make(2, 1));
    EXPECT_TRUE(mail.has_pending());
    mail.deliver_all();
    EXPECT_FALSE(mail.has_pending());
    EXPECT_EQ(mail.take_inbox(1).size(), 2u);
    EXPECT_EQ(mail.take_inbox(2).size(), 1u);
    EXPECT_TRUE(mail.take_inbox(0).empty());
}

TEST(Mailbox, TakeInboxDrains) {
    MailboxSystem mail(2);
    mail.post(make(0, 1));
    mail.deliver_all();
    EXPECT_EQ(mail.take_inbox(1).size(), 1u);
    EXPECT_TRUE(mail.take_inbox(1).empty());
}

TEST(Mailbox, ScheduledDeliveryCoversAllPairs) {
    MailboxSystem mail(4);
    for (RankId i = 0; i < 4; ++i) {
        for (RankId j = 0; j < 4; ++j) {
            if (i != j) {
                mail.post(make(i, j));
            }
        }
    }
    mail.deliver(all_to_all_pairs(4));
    EXPECT_FALSE(mail.has_pending());
    for (RankId r = 0; r < 4; ++r) {
        EXPECT_EQ(mail.take_inbox(r).size(), 3u);
    }
}

TEST(Mailbox, PartialScheduleLeavesRest) {
    MailboxSystem mail(3);
    mail.post(make(0, 1));
    mail.post(make(0, 2));
    mail.deliver({{0, 1}});
    EXPECT_TRUE(mail.has_pending());  // 0 -> 2 still buffered
    EXPECT_EQ(mail.take_inbox(1).size(), 1u);
    EXPECT_TRUE(mail.take_inbox(2).empty());
}

TEST(Mailbox, PreservesPostOrderPerPair) {
    MailboxSystem mail(2);
    for (int i = 0; i < 5; ++i) {
        Message m = make(0, 1, 8);
        std::vector<std::byte> data{static_cast<std::byte>(i)};
        m.payload = Message::share(std::move(data));
        mail.post(std::move(m));
    }
    mail.deliver_all();
    const auto inbox = mail.take_inbox(1);
    ASSERT_EQ(inbox.size(), 5u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(inbox[i].bytes()[0], static_cast<std::byte>(i));
    }
}

TEST(Mailbox, DeliverReportsBytes) {
    MailboxSystem mail(2);
    mail.post(make(0, 1, 100));
    const std::size_t bytes = mail.deliver_all();
    EXPECT_EQ(bytes, 116u);  // payload + 16-byte header
}

}  // namespace
}  // namespace aa
