// Processor-assignment strategies: assignment rules, load balance, and the
// cut-edge behaviour the paper's Figure 7 relies on.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/baseline.hpp"
#include "core/engine.hpp"
#include "core/strategies.hpp"
#include "graph/generators.hpp"
#include "partition/partition.hpp"

namespace aa {
namespace {

EngineConfig config_with(std::uint32_t ranks) {
    EngineConfig config;
    config.num_ranks = ranks;
    config.ia_threads = 1;
    config.seed = 77;
    return config;
}

GrowthBatch community_batch(const DynamicGraph& host, std::size_t count,
                            std::size_t communities, std::uint64_t seed) {
    GrowthConfig gc;
    gc.num_new = count;
    gc.communities = communities;
    gc.intra_edges = 3;
    gc.host_edges = 1;
    gc.noise = 0.0;
    Rng rng(seed);
    return grow_batch(host.num_vertices(), gc, rng);
}

TEST(RoundRobinAssignment, CyclicWithOffset) {
    const auto a = RoundRobinPS::assignment(7, 3, 0);
    EXPECT_EQ(a, (std::vector<RankId>{0, 1, 2, 0, 1, 2, 0}));
    const auto b = RoundRobinPS::assignment(4, 3, 2);
    EXPECT_EQ(b, (std::vector<RankId>{2, 0, 1, 2}));
}

TEST(RoundRobinAssignment, PerfectCountBalance) {
    const auto a = RoundRobinPS::assignment(1000, 7, 3);
    std::vector<int> counts(7, 0);
    for (const RankId r : a) {
        ++counts[r];
    }
    const auto [lo, hi] = std::minmax_element(counts.begin(), counts.end());
    EXPECT_LE(*hi - *lo, 1);
}

TEST(CutEdgeAssignment, BalancedCounts) {
    Rng rng(1);
    const auto host = barabasi_albert(100, 2, rng);
    auto engine_config = config_with(4);
    AnytimeEngine engine(host, engine_config);
    engine.initialize();
    const auto batch = community_batch(host, 40, 4, 11);

    CutEdgePS strategy(5);
    const auto assign = strategy.assignment(engine, batch);
    ASSERT_EQ(assign.size(), 40u);
    std::vector<int> counts(4, 0);
    for (const RankId r : assign) {
        ASSERT_LT(r, 4u);
        ++counts[r];
    }
    for (const int c : counts) {
        EXPECT_GT(c, 2);  // roughly balanced (multilevel balance constraint)
    }
}

TEST(CutEdgeAssignment, KeepsCommunitiesTogether) {
    Rng rng(2);
    const auto host = barabasi_albert(100, 2, rng);
    AnytimeEngine engine(host, config_with(4));
    engine.initialize();
    // 4 perfectly separable communities, 4 ranks: batch-internal cut edges
    // under CutEdge-PS must be far below round-robin's.
    const auto batch = community_batch(host, 48, 4, 13);

    CutEdgePS strategy(7);
    const auto cut_assign = strategy.assignment(engine, batch);
    const auto rr_assign = RoundRobinPS::assignment(48, 4, 0);

    const auto internal_cut = [&](const std::vector<RankId>& assign) {
        std::size_t cut = 0;
        for (const Edge& e : batch.edges) {
            if (e.u >= batch.base_id && e.v >= batch.base_id &&
                assign[e.u - batch.base_id] != assign[e.v - batch.base_id]) {
                ++cut;
            }
        }
        return cut;
    };
    EXPECT_LT(internal_cut(cut_assign), internal_cut(rr_assign) / 2 + 1);
}

TEST(Strategies, NewCutEdgeOrdering) {
    // The paper's Figure 7 ordering of *new* cut edges:
    //   Repartition-S <= CutEdge-PS <= RoundRobin-PS (with slack for noise).
    Rng rng(3);
    const auto host = barabasi_albert(150, 2, rng);
    const auto batch = community_batch(host, 60, 4, 17);

    const auto new_cut_with = [&](VertexAdditionStrategy& strategy) {
        AnytimeEngine engine(host, config_with(4));
        engine.initialize();
        engine.run_to_quiescence();
        const std::size_t before = engine.current_cut_edges();
        engine.apply_addition(batch, strategy);
        return engine.current_cut_edges() - std::min(before, engine.current_cut_edges());
    };

    RoundRobinPS rr;
    CutEdgePS ce(19);
    RepartitionS rp;
    const auto rr_cut = new_cut_with(rr);
    const auto ce_cut = new_cut_with(ce);
    const auto rp_cut = new_cut_with(rp);
    EXPECT_LT(ce_cut, rr_cut);
    EXPECT_LE(rp_cut, ce_cut + 5);
}

TEST(Strategies, NamesAreStable) {
    RoundRobinPS rr;
    CutEdgePS ce;
    RepartitionS rp;
    EXPECT_EQ(rr.name(), "RoundRobin-PS");
    EXPECT_EQ(ce.name(), "CutEdge-PS");
    EXPECT_EQ(rp.name(), "Repartition-S");
}

TEST(Strategies, RoundRobinOffsetAdvancesAcrossBatches) {
    // Two consecutive 1-vertex batches must not land on the same rank.
    DynamicGraph g(6);
    for (VertexId v = 0; v + 1 < 6; ++v) {
        g.add_edge(v, v + 1);
    }
    AnytimeEngine engine(g, config_with(3));
    engine.initialize();
    engine.run_to_quiescence();

    RoundRobinPS strategy;
    GrowthBatch b1;
    b1.base_id = 6;
    b1.num_new = 1;
    b1.edges = {{6, 0, 1.0}};
    engine.apply_addition(b1, strategy);
    GrowthBatch b2;
    b2.base_id = 7;
    b2.num_new = 1;
    b2.edges = {{7, 1, 1.0}};
    engine.apply_addition(b2, strategy);
    engine.run_to_quiescence();
    EXPECT_NE(engine.owners()[6], engine.owners()[7]);
}

TEST(Strategies, VertexCountBalanceAfterManyAdditions) {
    Rng rng(5);
    const auto host = barabasi_albert(80, 2, rng);
    AnytimeEngine engine(host, config_with(4));
    engine.initialize();
    engine.run_to_quiescence();

    RoundRobinPS strategy;
    DynamicGraph expected = host;
    for (int i = 0; i < 3; ++i) {
        const auto batch = community_batch(expected, 20, 2, 100 + i);
        engine.apply_addition(batch, strategy);
        expected = apply_batch(expected, batch);
    }
    engine.run_to_quiescence();

    std::vector<std::size_t> counts(4, 0);
    for (const RankId r : engine.owners()) {
        ++counts[r];
    }
    const auto [lo, hi] = std::minmax_element(counts.begin(), counts.end());
    // Host partition is balanced and round-robin adds evenly.
    EXPECT_LT(static_cast<double>(*hi) / static_cast<double>(std::max<std::size_t>(*lo, 1)),
              1.5);
}

}  // namespace
}  // namespace aa
