// Dynamic vertex-addition correctness: the central invariant of the library.
// After any batch of vertex additions is applied with any strategy, at any
// injection step, the converged distance vectors must equal the exact APSP of
// the grown graph.
#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "core/closeness.hpp"
#include "core/engine.hpp"
#include "core/strategies.hpp"
#include "graph/generators.hpp"

namespace aa {
namespace {

EngineConfig small_config(std::uint32_t ranks) {
    EngineConfig config;
    config.num_ranks = ranks;
    config.ia_threads = 1;
    config.seed = 23;
    return config;
}

void expect_exact(const AnytimeEngine& engine, const DynamicGraph& expected) {
    ASSERT_EQ(engine.num_vertices(), expected.num_vertices());
    const auto approx = engine.full_distance_matrix();
    const auto exact = exact_apsp(expected);
    for (std::size_t v = 0; v < exact.size(); ++v) {
        for (std::size_t t = 0; t < exact.size(); ++t) {
            if (exact[v][t] < kInfinity) {
                ASSERT_NEAR(approx[v][t], exact[v][t], 1e-9)
                    << "d(" << v << "," << t << ")";
            } else {
                ASSERT_GE(approx[v][t], kInfinity);
            }
        }
    }
}

GrowthBatch make_batch(const DynamicGraph& host, std::size_t count,
                       std::uint64_t seed) {
    GrowthConfig config;
    config.num_new = count;
    config.communities = 3;
    config.intra_edges = 2;
    config.host_edges = 2;
    Rng rng(seed);
    return grow_batch(host.num_vertices(), config, rng);
}

TEST(EngineDynamic, SingleVertexRoundRobin) {
    DynamicGraph g(5);
    for (VertexId v = 0; v + 1 < 5; ++v) {
        g.add_edge(v, v + 1, 1.0);
    }
    AnytimeEngine engine(g, small_config(2));
    engine.initialize();
    engine.run_to_quiescence();

    GrowthBatch batch;
    batch.base_id = 5;
    batch.num_new = 1;
    batch.edges = {{5, 0, 1.0}, {5, 4, 1.0}};
    RoundRobinPS strategy;
    engine.apply_addition(batch, strategy);
    engine.run_to_quiescence();
    expect_exact(engine, apply_batch(g, batch));
}

TEST(EngineDynamic, AnywhereAdditionMatchesExactAtRc0) {
    Rng rng(31);
    const auto g = barabasi_albert(80, 2, rng);
    const auto batch = make_batch(g, 12, 101);

    AnytimeEngine engine(g, small_config(4));
    engine.initialize();
    // Inject immediately (RC0): no static refinement has happened yet.
    RoundRobinPS strategy;
    engine.apply_addition(batch, strategy);
    engine.run_to_quiescence();
    expect_exact(engine, apply_batch(g, batch));
}

TEST(EngineDynamic, AnywhereAdditionMatchesExactMidAnalysis) {
    Rng rng(37);
    const auto g = barabasi_albert(80, 2, rng);
    const auto batch = make_batch(g, 12, 102);

    AnytimeEngine engine(g, small_config(8));
    engine.initialize();
    engine.run_rc_steps(2);  // mid-analysis injection
    RoundRobinPS strategy;
    engine.apply_addition(batch, strategy);
    engine.run_to_quiescence();
    expect_exact(engine, apply_batch(g, batch));
}

TEST(EngineDynamic, CutEdgeStrategyMatchesExact) {
    Rng rng(41);
    const auto g = barabasi_albert(80, 2, rng);
    const auto batch = make_batch(g, 16, 103);

    AnytimeEngine engine(g, small_config(4));
    engine.initialize();
    engine.run_rc_steps(1);
    CutEdgePS strategy(99);
    engine.apply_addition(batch, strategy);
    engine.run_to_quiescence();
    expect_exact(engine, apply_batch(g, batch));
}

TEST(EngineDynamic, RepartitionStrategyMatchesExact) {
    Rng rng(43);
    const auto g = barabasi_albert(80, 2, rng);
    const auto batch = make_batch(g, 16, 104);

    AnytimeEngine engine(g, small_config(4));
    engine.initialize();
    engine.run_rc_steps(2);
    RepartitionS strategy;
    engine.apply_addition(batch, strategy);
    engine.run_to_quiescence();
    expect_exact(engine, apply_batch(g, batch));
}

TEST(EngineDynamic, SequentialBatchesAllStrategies) {
    // Interleave all three strategies across successive batches.
    Rng rng(47);
    DynamicGraph g = barabasi_albert(60, 2, rng);

    AnytimeEngine engine(g, small_config(4));
    engine.initialize();
    engine.run_rc_steps(1);

    RoundRobinPS round_robin;
    CutEdgePS cut_edge(7);
    RepartitionS repartition;
    VertexAdditionStrategy* strategies[] = {&round_robin, &cut_edge, &repartition};

    DynamicGraph expected = g;
    for (int i = 0; i < 3; ++i) {
        const auto batch = make_batch(expected, 8, 200 + i);
        engine.apply_addition(batch, *strategies[i]);
        engine.run_rc_steps(1);  // partial convergence between batches
        expected = apply_batch(expected, batch);
    }
    engine.run_to_quiescence();
    expect_exact(engine, expected);
}

TEST(EngineDynamic, AdditionBeforeAnyRcStep) {
    // Inject while IA results have not been exchanged even once.
    Rng rng(53);
    const auto g = erdos_renyi_gnm(50, 120, rng, WeightRange{1.0, 4.0});
    const auto batch = make_batch(g, 10, 105);

    AnytimeEngine engine(g, small_config(4));
    engine.initialize();
    RepartitionS strategy;
    engine.apply_addition(batch, strategy);
    engine.run_to_quiescence();
    expect_exact(engine, apply_batch(g, batch));
}

TEST(EngineDynamic, VertexWithSingleEdge) {
    DynamicGraph g(4);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    AnytimeEngine engine(g, small_config(2));
    engine.initialize();
    engine.run_to_quiescence();

    GrowthBatch batch;
    batch.base_id = 4;
    batch.num_new = 2;
    batch.edges = {{4, 0, 2.0}, {5, 4, 1.0}};  // chain: 0 - new4 - new5
    RoundRobinPS strategy;
    engine.apply_addition(batch, strategy);
    engine.run_to_quiescence();
    expect_exact(engine, apply_batch(g, batch));
}

TEST(EngineDynamic, IsolatedNewVertexStaysUnreachable) {
    DynamicGraph g(4);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    AnytimeEngine engine(g, small_config(2));
    engine.initialize();
    engine.run_to_quiescence();

    GrowthBatch batch;
    batch.base_id = 4;
    batch.num_new = 1;  // no edges at all
    RoundRobinPS strategy;
    engine.apply_addition(batch, strategy);
    engine.run_to_quiescence();
    expect_exact(engine, apply_batch(g, batch));
    const auto row = engine.distance_row(4);
    EXPECT_EQ(row[4], 0.0);
    EXPECT_GE(row[0], kInfinity);
}

TEST(EngineDynamic, NewEdgesShortenExistingPaths) {
    // A new vertex bridging two far ends must lower existing pair distances.
    DynamicGraph g(8);
    for (VertexId v = 0; v + 1 < 8; ++v) {
        g.add_edge(v, v + 1, 1.0);
    }
    AnytimeEngine engine(g, small_config(4));
    engine.initialize();
    engine.run_to_quiescence();
    EXPECT_NEAR(engine.distance_row(0)[7], 7.0, 1e-12);

    GrowthBatch batch;
    batch.base_id = 8;
    batch.num_new = 1;
    batch.edges = {{8, 0, 1.0}, {8, 7, 1.0}};
    RoundRobinPS strategy;
    engine.apply_addition(batch, strategy);
    engine.run_to_quiescence();
    EXPECT_NEAR(engine.distance_row(0)[7], 2.0, 1e-12);
    expect_exact(engine, apply_batch(g, batch));
}

TEST(EngineDynamic, ReportTracksAdditions) {
    Rng rng(59);
    const auto g = barabasi_albert(40, 2, rng);
    const auto batch = make_batch(g, 6, 106);
    AnytimeEngine engine(g, small_config(2));
    engine.initialize();
    RoundRobinPS strategy;
    engine.apply_addition(batch, strategy);
    engine.run_to_quiescence();
    EXPECT_EQ(engine.report().vertex_additions, 6u);
    EXPECT_EQ(engine.report().edge_additions, batch.edges.size());
    EXPECT_GT(engine.report().dynamic_ops, 0.0);
}

}  // namespace
}  // namespace aa
