#include <gtest/gtest.h>

#include <set>

#include "runtime/alltoall.hpp"

namespace aa {
namespace {

TEST(AllToAllPairs, CoversEveryOrderedPairOnce) {
    for (std::uint32_t p : {2u, 3u, 5u, 16u}) {
        const auto pairs = all_to_all_pairs(p);
        EXPECT_EQ(pairs.size(), static_cast<std::size_t>(p) * (p - 1));
        std::set<std::pair<RankId, RankId>> seen(pairs.begin(), pairs.end());
        EXPECT_EQ(seen.size(), pairs.size());  // no duplicates
        for (const auto& [from, to] : pairs) {
            EXPECT_NE(from, to);
            EXPECT_LT(from, p);
            EXPECT_LT(to, p);
        }
    }
}

TEST(AllToAllPairs, DegenerateSizes) {
    EXPECT_TRUE(all_to_all_pairs(0).empty());
    EXPECT_TRUE(all_to_all_pairs(1).empty());
}

TEST(AllToAllPairs, RoundStructure) {
    // Within each round of P pairs, senders are distinct and receivers are
    // distinct (a permutation) — the personalized schedule property.
    const std::uint32_t p = 6;
    const auto pairs = all_to_all_pairs(p);
    for (std::size_t round = 0; round + 1 < p; ++round) {
        std::set<RankId> senders;
        std::set<RankId> receivers;
        for (std::size_t i = 0; i < p; ++i) {
            senders.insert(pairs[round * p + i].first);
            receivers.insert(pairs[round * p + i].second);
        }
        EXPECT_EQ(senders.size(), p);
        EXPECT_EQ(receivers.size(), p);
    }
}

class ExchangeDuration : public ::testing::Test {
protected:
    LogPParams params_{.latency = 10e-6,
                       .overhead = 1e-6,
                       .gap_per_byte = 1e-9,
                       .seconds_per_op = 1e-9,
                       .max_message_bytes = 1 << 20};

    std::vector<std::size_t> uniform_matrix(std::uint32_t p, std::size_t bytes) {
        std::vector<std::size_t> m(static_cast<std::size_t>(p) * p, bytes);
        for (std::uint32_t i = 0; i < p; ++i) {
            m[static_cast<std::size_t>(i) * p + i] = 0;
        }
        return m;
    }
};

TEST_F(ExchangeDuration, SerializedSumsAllMessages) {
    const auto m = uniform_matrix(4, 1000);
    const double t =
        exchange_duration(m, 4, params_, CommSchedule::SerializedAllToAll);
    EXPECT_NEAR(t, 12 * params_.message_time(1000), 1e-12);
}

TEST_F(ExchangeDuration, ParallelRoundsTakesMaxPerRound) {
    const auto m = uniform_matrix(4, 1000);
    const double t = exchange_duration(m, 4, params_, CommSchedule::ParallelRounds);
    EXPECT_NEAR(t, 3 * params_.message_time(1000), 1e-12);
}

TEST_F(ExchangeDuration, SerializedSlowerThanParallel) {
    const auto m = uniform_matrix(8, 4096);
    const double serial =
        exchange_duration(m, 8, params_, CommSchedule::SerializedAllToAll);
    const double parallel =
        exchange_duration(m, 8, params_, CommSchedule::ParallelRounds);
    EXPECT_GT(serial, parallel);
}

TEST_F(ExchangeDuration, FloodingPenalizesConcurrency) {
    const auto m = uniform_matrix(8, 4096);
    const double flood = exchange_duration(m, 8, params_, CommSchedule::Flooding);
    // 56 concurrent messages each stretched 56x the longest.
    EXPECT_NEAR(flood, 56 * params_.message_time(4096), 1e-9);
}

TEST_F(ExchangeDuration, EmptyMatrixIsFree) {
    std::vector<std::size_t> m(16, 0);
    EXPECT_EQ(exchange_duration(m, 4, params_, CommSchedule::SerializedAllToAll),
              0.0);
}

TEST_F(ExchangeDuration, SkipsEmptySlots) {
    std::vector<std::size_t> m(9, 0);
    m[0 * 3 + 1] = 500;  // only 0 -> 1 talks
    const double t =
        exchange_duration(m, 3, params_, CommSchedule::SerializedAllToAll);
    EXPECT_NEAR(t, params_.message_time(500), 1e-12);
}

TEST(PerPairBytes, BucketsBySenderReceiver) {
    Message a;
    a.from = 0;
    a.to = 1;
    a.payload = Message::share(std::vector<std::byte>(100));
    Message b;
    b.from = 0;
    b.to = 1;
    b.payload = Message::share(std::vector<std::byte>(50));
    Message c;
    c.from = 1;
    c.to = 0;
    c.payload = Message::share(std::vector<std::byte>(10));
    const auto matrix = per_pair_bytes({&a, &b, &c}, 2);
    EXPECT_EQ(matrix[0 * 2 + 1], 100u + 16 + 50 + 16);
    EXPECT_EQ(matrix[1 * 2 + 0], 10u + 16);
    EXPECT_EQ(matrix[0], 0u);
}

}  // namespace
}  // namespace aa
