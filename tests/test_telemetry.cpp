// The observability layer: MetricsRegistry semantics (disabled-mode cost
// discipline, span nesting, instruments), the span CSV/JSON exporters, and
// the engine-level aa.timeline.v1 block.
#include <gtest/gtest.h>

#include "common/metrics.hpp"
#include "core/engine.hpp"
#include "core/strategies.hpp"
#include "core/telemetry.hpp"
#include "graph/generators.hpp"

namespace aa {
namespace {

// ---- registry: disabled mode -----------------------------------------------

TEST(MetricsRegistry, DisabledDoesNothingAndAllocatesNothing) {
    MetricsRegistry m;
    ASSERT_FALSE(m.enabled());

    const auto c = m.counter("ops", 0);
    const auto g = m.gauge("depth");
    const double bounds[] = {1.0, 10.0};
    const auto h = m.histogram("bytes", bounds);
    const auto s = m.span_open("phase", 0, 1, 0.5);
    EXPECT_EQ(c, MetricsRegistry::kNullHandle);
    EXPECT_EQ(g, MetricsRegistry::kNullHandle);
    EXPECT_EQ(h, MetricsRegistry::kNullHandle);
    EXPECT_EQ(s, MetricsRegistry::kNullHandle);

    m.add(c, 5);
    m.set(g, 3);
    m.observe(h, 2.0);
    m.span_add(s, 1, 2, 3);
    m.span_attr(s, "k", "v");
    m.span_close(s, 1.0);
    m.record_span(MetricSpan{.name = "x"});

    EXPECT_TRUE(m.spans().empty());
    EXPECT_TRUE(m.counters().empty());
    EXPECT_TRUE(m.histograms().empty());
    EXPECT_EQ(m.open_span_count(), 0u);
    // The cost contract: a disabled registry never allocates. The span store
    // still having zero capacity after all of the calls above is the
    // observable half of that promise.
    EXPECT_EQ(m.spans().capacity(), 0u);
}

TEST(MetricsRegistry, HandlesMintedWhileDisabledStayInert) {
    MetricsRegistry m;
    const auto stale = m.counter("early");
    m.enable();
    m.add(stale, 7);  // must not touch (or crash on) any live instrument
    EXPECT_TRUE(m.counters().empty());
}

// ---- registry: instruments -------------------------------------------------

TEST(MetricsRegistry, CountersAccumulateAndGaugesOverwrite) {
    MetricsRegistry m;
    m.enable();
    const auto c = m.counter("ops", 2);
    EXPECT_EQ(m.counter("ops", 2), c);            // find-or-create
    EXPECT_NE(m.counter("ops", 3), c);            // distinct per rank
    m.add(c, 2.0);
    m.add(c, 3.5);
    EXPECT_DOUBLE_EQ(m.value(c), 5.5);

    const auto g = m.gauge("queue");
    m.set(g, 10);
    m.set(g, 4);
    EXPECT_DOUBLE_EQ(m.value(g), 4);

    const auto counters = m.counters();
    ASSERT_EQ(counters.size(), 3u);
    EXPECT_EQ(counters[0].name, "ops");
    EXPECT_EQ(counters[0].rank, 2);
    EXPECT_FALSE(counters[0].is_gauge);
    EXPECT_TRUE(counters[2].is_gauge);
}

TEST(MetricsRegistry, HistogramBucketsAndOverflow) {
    MetricsRegistry m;
    m.enable();
    const double bounds[] = {1.0, 10.0};
    const auto h = m.histogram("payload", bounds);
    EXPECT_EQ(m.histogram("payload", bounds), h);
    m.observe(h, 0.5);    // <= 1
    m.observe(h, 1.0);    // <= 1 (bounds are upper bounds, inclusive)
    m.observe(h, 5.0);    // <= 10
    m.observe(h, 100.0);  // overflow
    const auto hists = m.histograms();
    ASSERT_EQ(hists.size(), 1u);
    ASSERT_EQ(hists[0].counts.size(), 3u);
    EXPECT_EQ(hists[0].counts[0], 2u);
    EXPECT_EQ(hists[0].counts[1], 1u);
    EXPECT_EQ(hists[0].counts[2], 1u);
    EXPECT_DOUBLE_EQ(hists[0].sum, 106.5);
    EXPECT_EQ(hists[0].observations, 4u);
}

// ---- registry: spans -------------------------------------------------------

TEST(MetricsRegistry, SpansNestLifoWithDepthAndParent) {
    MetricsRegistry m;
    m.enable();
    const auto outer = m.span_open("add", -1, 3, 1.0);
    const auto inner = m.span_open("add.extend", 0, 3, 1.25);
    m.span_add(inner, 10.0, 256, 2);
    m.span_add(inner, 5.0);
    m.span_close(inner, 1.5);
    m.span_attr(outer, "strategy", "CutEdge-PS");
    m.span_close(outer, 2.0);
    const auto sibling = m.span_open("rc.post", 1, 4, 2.0);
    m.span_close(sibling, 2.5);

    const auto& spans = m.spans();
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_EQ(m.open_span_count(), 0u);

    EXPECT_EQ(spans[outer].name, "add");
    EXPECT_EQ(spans[outer].depth, 0u);
    EXPECT_EQ(spans[outer].parent, -1);
    ASSERT_EQ(spans[outer].attrs.size(), 1u);
    EXPECT_EQ(spans[outer].attrs[0].first, "strategy");

    EXPECT_EQ(spans[inner].name, "add.extend");
    EXPECT_EQ(spans[inner].depth, 1u);
    EXPECT_EQ(spans[inner].parent, static_cast<std::int64_t>(outer));
    EXPECT_DOUBLE_EQ(spans[inner].ops, 15.0);
    EXPECT_EQ(spans[inner].bytes, 256u);
    EXPECT_EQ(spans[inner].messages, 2u);
    EXPECT_DOUBLE_EQ(spans[inner].t_begin, 1.25);
    EXPECT_DOUBLE_EQ(spans[inner].t_end, 1.5);

    EXPECT_EQ(spans[sibling].depth, 0u);
    EXPECT_EQ(spans[sibling].parent, -1);
}

TEST(MetricsRegistry, ClearDropsDataButKeepsEnablement) {
    MetricsRegistry m;
    m.enable();
    m.add(m.counter("c"), 1);
    m.record_span(MetricSpan{.name = "s"});
    m.clear();
    EXPECT_TRUE(m.enabled());
    EXPECT_TRUE(m.spans().empty());
    EXPECT_TRUE(m.counters().empty());
}

// ---- exporters -------------------------------------------------------------

TEST(MetricsExport, JsonEscape) {
    EXPECT_EQ(json_escape("plain"), "plain");
    EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
}

TEST(MetricsExport, SpanCsvRoundTripIsLossless) {
    std::vector<MetricSpan> spans;
    MetricSpan plain;
    plain.name = "rc.post";
    plain.rank = 3;
    plain.step = 7;
    plain.t_begin = 0.125;
    plain.t_end = 0.25;
    plain.ops = 42.5;
    plain.bytes = 1024;
    plain.messages = 4;
    spans.push_back(plain);

    MetricSpan nasty;  // every delimiter the escaping must survive
    nasty.name = "add,phase;x=1%2\n";
    nasty.depth = 2;
    nasty.parent = 0;
    nasty.attrs = {{"strategy", "CutEdge-PS"},
                   {"note", "a,b;c=d%e"},
                   {"empty", ""}};
    spans.push_back(nasty);

    const std::string csv = spans_to_csv(spans);
    const auto back = spans_from_csv(csv);
    ASSERT_EQ(back.size(), spans.size());
    EXPECT_EQ(back[0], spans[0]);
    EXPECT_EQ(back[1], spans[1]);
}

TEST(MetricsExport, RegistryJsonContainsEverything) {
    MetricsRegistry m;
    m.enable();
    m.add(m.counter("sent", 1), 9);
    const double bounds[] = {8.0};
    m.observe(m.histogram("sizes", bounds), 3.0);
    const auto s = m.span_open("ia", 0, -1, 0.0);
    m.span_attr(s, "threads", "4");
    m.span_close(s, 0.5);

    const std::string json = metrics_to_json(m, 2);
    EXPECT_NE(json.find("\"enabled\": true"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"ia\""), std::string::npos);
    EXPECT_NE(json.find("\"threads\":\"4\""), std::string::npos);
    EXPECT_NE(json.find("\"sent\""), std::string::npos);
    EXPECT_NE(json.find("\"sizes\""), std::string::npos);
}

// ---- engine integration ----------------------------------------------------

EngineConfig small_config() {
    EngineConfig config;
    config.num_ranks = 4;
    config.ia_threads = 2;
    return config;
}

TEST(Telemetry, EngineTimelineCarriesPhaseSpans) {
    Rng rng(11);
    auto g = barabasi_albert(120, 2, rng);
    EngineConfig config = small_config();
    config.enable_metrics = true;
    AnytimeEngine engine(std::move(g), config);
    engine.initialize();
    engine.run_rc_steps(2);
    GrowthConfig gc;
    gc.num_new = 6;
    Rng batch_rng(5);
    RoundRobinPS strategy;
    engine.apply_addition(grow_batch(engine.num_vertices(), gc, batch_rng),
                          strategy);
    engine.run_to_quiescence();

    const auto& spans = engine.metrics().spans();
    ASSERT_FALSE(spans.empty());
    const auto has = [&spans](std::string_view name) {
        for (const MetricSpan& s : spans) {
            if (s.name == name) {
                return true;
            }
        }
        return false;
    };
    EXPECT_TRUE(has("dd"));
    EXPECT_TRUE(has("ia"));
    EXPECT_TRUE(has("rc.post"));
    EXPECT_TRUE(has("rc.exchange"));
    EXPECT_TRUE(has("rc.ingest"));
    EXPECT_TRUE(has("rc.propagate"));
    EXPECT_TRUE(has("add"));
    EXPECT_EQ(engine.metrics().open_span_count(), 0u);

    // Span times live on the simulated clock and never run backwards.
    for (const MetricSpan& s : spans) {
        EXPECT_LE(s.t_begin, s.t_end) << s.name;
        EXPECT_LE(s.t_end, engine.sim_seconds() + 1e-9) << s.name;
    }

    const std::string json = telemetry_json(engine);
    EXPECT_NE(json.find("\"schema\": \"aa.timeline.v1\""), std::string::npos);
    EXPECT_NE(json.find("\"per_rank\""), std::string::npos);
    EXPECT_NE(json.find("\"steps\""), std::string::npos);

    // The CSV exporter is the same span stream, losslessly.
    EXPECT_EQ(spans_from_csv(telemetry_csv(engine)), spans);
}

TEST(Telemetry, MetricsOffByDefaultRecordsNothing) {
    Rng rng(11);
    auto g = barabasi_albert(80, 2, rng);
    AnytimeEngine engine(std::move(g), small_config());
    engine.initialize();
    engine.run_to_quiescence();
    EXPECT_FALSE(engine.metrics().enabled());
    EXPECT_TRUE(engine.metrics().spans().empty());
    EXPECT_EQ(engine.metrics().spans().capacity(), 0u);
}

}  // namespace
}  // namespace aa
