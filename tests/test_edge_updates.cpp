// Anywhere edge additions between existing vertices ([9]) and edge-weight
// decreases ([7]) — the prior-work updates that vertex addition builds on.
#include <gtest/gtest.h>

#include "core/closeness.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"

namespace aa {
namespace {

EngineConfig small_config(std::uint32_t ranks) {
    EngineConfig config;
    config.num_ranks = ranks;
    config.ia_threads = 1;
    config.seed = 101;
    return config;
}

void expect_exact(const AnytimeEngine& engine, const DynamicGraph& expected) {
    const auto approx = engine.full_distance_matrix();
    const auto exact = exact_apsp(expected);
    for (std::size_t v = 0; v < exact.size(); ++v) {
        for (std::size_t t = 0; t < exact.size(); ++t) {
            if (exact[v][t] < kInfinity) {
                ASSERT_NEAR(approx[v][t], exact[v][t], 1e-9)
                    << "d(" << v << "," << t << ")";
            } else {
                ASSERT_GE(approx[v][t], kInfinity);
            }
        }
    }
}

TEST(EdgeAdd, ShortcutEdgeLowersDistances) {
    DynamicGraph g(8);
    for (VertexId v = 0; v + 1 < 8; ++v) {
        g.add_edge(v, v + 1, 1.0);
    }
    AnytimeEngine engine(g, small_config(4));
    engine.initialize();
    engine.run_to_quiescence();
    EXPECT_NEAR(engine.distance_row(0)[7], 7.0, 1e-12);

    const Edge shortcut{0, 7, 1.5};
    engine.add_edges({&shortcut, 1});
    engine.run_to_quiescence();

    DynamicGraph expected = g;
    expected.add_edge(0, 7, 1.5);
    EXPECT_NEAR(engine.distance_row(0)[7], 1.5, 1e-12);
    expect_exact(engine, expected);
}

TEST(EdgeAdd, ConnectsComponents) {
    DynamicGraph g(6);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(3, 4);
    g.add_edge(4, 5);
    AnytimeEngine engine(g, small_config(3));
    engine.initialize();
    engine.run_to_quiescence();
    EXPECT_GE(engine.distance_row(0)[5], kInfinity);

    const Edge bridge{2, 3, 2.0};
    engine.add_edges({&bridge, 1});
    engine.run_to_quiescence();
    DynamicGraph expected = g;
    expected.add_edge(2, 3, 2.0);
    expect_exact(engine, expected);
    EXPECT_NEAR(engine.distance_row(0)[5], 6.0, 1e-12);
}

TEST(EdgeAdd, BatchOnRandomGraph) {
    Rng rng(1);
    DynamicGraph g = barabasi_albert(90, 2, rng, WeightRange{1.0, 4.0});
    AnytimeEngine engine(g, small_config(6));
    engine.initialize();
    engine.run_rc_steps(1);  // mid-analysis

    DynamicGraph expected = g;
    std::vector<Edge> new_edges;
    Rng edge_rng(2);
    while (new_edges.size() < 15) {
        const auto u = static_cast<VertexId>(edge_rng.uniform(90));
        const auto v = static_cast<VertexId>(edge_rng.uniform(90));
        if (u != v && expected.add_edge(u, v, 1.0 + edge_rng.uniform01())) {
            new_edges.push_back({u, v, expected.edge_weight(u, v)});
        }
    }
    engine.add_edges(new_edges);
    engine.run_to_quiescence();
    expect_exact(engine, expected);
    EXPECT_EQ(engine.report().edge_additions, 15u);
}

TEST(EdgeAdd, DuplicatesSkipped) {
    DynamicGraph g(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 1.0);
    AnytimeEngine engine(g, small_config(2));
    engine.initialize();
    const Edge duplicate{0, 1, 5.0};
    engine.add_edges({&duplicate, 1});
    engine.run_to_quiescence();
    expect_exact(engine, g);  // unchanged
    EXPECT_EQ(engine.report().edge_additions, 0u);
}

TEST(WeightDecrease, UpdatesShortestPaths) {
    DynamicGraph g(5);
    g.add_edge(0, 1, 4.0);
    g.add_edge(1, 2, 4.0);
    g.add_edge(2, 3, 4.0);
    g.add_edge(3, 4, 4.0);
    AnytimeEngine engine(g, small_config(3));
    engine.initialize();
    engine.run_to_quiescence();
    EXPECT_NEAR(engine.distance_row(0)[4], 16.0, 1e-12);

    EXPECT_TRUE(engine.decrease_edge_weight(1, 2, 1.0));
    engine.run_to_quiescence();
    DynamicGraph expected = g;
    expected.set_edge_weight(1, 2, 1.0);
    expect_exact(engine, expected);
    EXPECT_NEAR(engine.distance_row(0)[4], 13.0, 1e-12);
}

TEST(WeightDecrease, MissingEdgeReturnsFalse) {
    DynamicGraph g(3);
    g.add_edge(0, 1, 2.0);
    AnytimeEngine engine(g, small_config(2));
    engine.initialize();
    EXPECT_FALSE(engine.decrease_edge_weight(0, 2, 1.0));
}

TEST(WeightDecrease, EqualWeightIsNoop) {
    DynamicGraph g(3);
    g.add_edge(0, 1, 2.0);
    g.add_edge(1, 2, 2.0);
    AnytimeEngine engine(g, small_config(2));
    engine.initialize();
    engine.run_to_quiescence();
    const double t = engine.sim_seconds();
    EXPECT_TRUE(engine.decrease_edge_weight(0, 1, 2.0));
    EXPECT_EQ(engine.sim_seconds(), t);  // nothing charged
}

TEST(WeightDecrease, RandomSequenceMatchesExact) {
    Rng rng(3);
    DynamicGraph g = erdos_renyi_gnm(70, 210, rng, WeightRange{2.0, 8.0});
    AnytimeEngine engine(g, small_config(5));
    engine.initialize();
    engine.run_to_quiescence();

    DynamicGraph expected = g;
    Rng pick(4);
    const auto edges = expected.edges();
    for (int i = 0; i < 10; ++i) {
        const Edge& e = edges[pick.uniform(edges.size())];
        const Weight current = expected.edge_weight(e.u, e.v);
        const Weight lower = current * 0.5;
        expected.set_edge_weight(e.u, e.v, lower);
        EXPECT_TRUE(engine.decrease_edge_weight(e.u, e.v, lower));
        if (i % 3 == 0) {
            engine.run_rc_steps(1);  // interleave partial convergence
        }
    }
    engine.run_to_quiescence();
    expect_exact(engine, expected);
}

// Local helper mirroring RoundRobinPS::assignment without pulling in the
// strategy header (keeps this test focused on the engine API).
std::vector<RankId> RoundRobinPS_assignment_helper(std::size_t count,
                                                   std::uint32_t ranks) {
    std::vector<RankId> out(count);
    for (std::size_t i = 0; i < count; ++i) {
        out[i] = static_cast<RankId>(i % ranks);
    }
    return out;
}

TEST(EdgeAdd, MixedWithVertexAdditions) {
    Rng rng(5);
    DynamicGraph g = barabasi_albert(60, 2, rng);
    AnytimeEngine engine(g, small_config(4));
    engine.initialize();
    engine.run_rc_steps(1);

    // Vertex batch, then extra edges among old vertices, then converge.
    GrowthConfig gc;
    gc.num_new = 8;
    Rng brng(6);
    const auto batch = grow_batch(60, gc, brng);
    engine.anywhere_add(batch, RoundRobinPS_assignment_helper(batch.num_new, 4));

    DynamicGraph expected = g;
    expected.add_vertices(batch.num_new);
    for (const Edge& e : batch.edges) {
        expected.add_edge(e.u, e.v, e.weight);
    }
    std::vector<Edge> extra;
    Rng edge_rng(7);
    while (extra.size() < 6) {
        const auto u = static_cast<VertexId>(edge_rng.uniform(60));
        const auto v = static_cast<VertexId>(edge_rng.uniform(60));
        if (u != v && expected.add_edge(u, v, 1.0)) {
            extra.push_back({u, v, 1.0});
        }
    }
    engine.add_edges(extra);
    engine.run_to_quiescence();
    expect_exact(engine, expected);
}

}  // namespace
}  // namespace aa
