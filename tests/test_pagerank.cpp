// Distributed PageRank on the anytime-anywhere substrate.
#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "measures/pagerank.hpp"

namespace aa {
namespace {

EngineConfig cluster_config(std::uint32_t ranks) {
    EngineConfig config;
    config.num_ranks = ranks;
    config.ia_threads = 1;
    config.seed = 77;
    return config;
}

TEST(ExactPagerank, UniformOnRegularGraph) {
    // A cycle is 2-regular: PageRank must be uniform.
    DynamicGraph g(8);
    for (VertexId v = 0; v < 8; ++v) {
        g.add_edge(v, (v + 1) % 8);
    }
    const auto scores = exact_pagerank(g);
    for (const double s : scores) {
        EXPECT_NEAR(s, 1.0 / 8, 1e-9);
    }
}

TEST(ExactPagerank, SumsToOne) {
    Rng rng(1);
    const auto g = barabasi_albert(120, 2, rng);
    const auto scores = exact_pagerank(g);
    EXPECT_NEAR(std::accumulate(scores.begin(), scores.end(), 0.0), 1.0, 1e-9);
}

TEST(ExactPagerank, HubsScoreHigher) {
    // Star center receives everything.
    DynamicGraph g(6);
    for (VertexId v = 1; v < 6; ++v) {
        g.add_edge(0, v);
    }
    const auto scores = exact_pagerank(g);
    for (VertexId v = 1; v < 6; ++v) {
        EXPECT_GT(scores[0], scores[v]);
    }
}

TEST(ExactPagerank, DanglingMassRedistributed) {
    DynamicGraph g(3);
    g.add_edge(0, 1);  // vertex 2 isolated (dangling)
    const auto scores = exact_pagerank(g);
    EXPECT_NEAR(std::accumulate(scores.begin(), scores.end(), 0.0), 1.0, 1e-9);
    EXPECT_GT(scores[2], 0.0);
}

TEST(DistributedPagerank, MatchesSequential) {
    Rng rng(2);
    const auto g = barabasi_albert(150, 3, rng);
    PageRankEngine engine(g, cluster_config(4));
    engine.initialize();
    const std::size_t iterations = engine.run_to_convergence();
    EXPECT_GT(iterations, 2u);

    const auto expected = exact_pagerank(g);
    const auto actual = engine.scores();
    for (std::size_t v = 0; v < expected.size(); ++v) {
        EXPECT_NEAR(actual[v], expected[v], 1e-7) << "vertex " << v;
    }
}

TEST(DistributedPagerank, SingleRankMatchesToo) {
    Rng rng(3);
    const auto g = erdos_renyi_gnm(80, 240, rng);
    PageRankEngine engine(g, cluster_config(1));
    engine.initialize();
    engine.run_to_convergence();
    const auto expected = exact_pagerank(g);
    const auto actual = engine.scores();
    for (std::size_t v = 0; v < expected.size(); ++v) {
        EXPECT_NEAR(actual[v], expected[v], 1e-8);
    }
}

TEST(DistributedPagerank, ResidualShrinksMonotonically) {
    Rng rng(4);
    const auto g = barabasi_albert(100, 2, rng);
    PageRankEngine engine(g, cluster_config(4));
    engine.initialize();
    double previous = 1e18;
    int rises = 0;
    for (int i = 0; i < 20 && engine.iteration(); ++i) {
        rises += engine.last_delta() > previous;
        previous = engine.last_delta();
    }
    // Power iteration residuals shrink geometrically; allow one transient.
    EXPECT_LE(rises, 1);
}

TEST(DistributedPagerank, ChargesCommunication) {
    Rng rng(5);
    const auto g = barabasi_albert(100, 2, rng);
    PageRankEngine engine(g, cluster_config(4));
    engine.initialize();
    engine.run_to_convergence();
    EXPECT_GT(engine.sim_seconds(), 0.0);
    EXPECT_GT(engine.cluster().stats().total_messages, 0u);
}

TEST(DistributedPagerank, AnywhereVertexAdditions) {
    Rng rng(6);
    const auto g = barabasi_albert(90, 2, rng);
    PageRankEngine engine(g, cluster_config(4));
    engine.initialize();
    engine.run_to_convergence();

    GrowthConfig gc;
    gc.num_new = 20;
    gc.communities = 2;
    Rng brng(7);
    const auto batch = grow_batch(90, gc, brng);
    engine.add_vertices(batch);
    engine.run_to_convergence();

    DynamicGraph grown = g;
    grown.add_vertices(batch.num_new);
    for (const Edge& e : batch.edges) {
        grown.add_edge(e.u, e.v, e.weight);
    }
    const auto expected = exact_pagerank(grown);
    const auto actual = engine.scores();
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t v = 0; v < expected.size(); ++v) {
        EXPECT_NEAR(actual[v], expected[v], 1e-6) << "vertex " << v;
    }
}

TEST(DistributedPagerank, RepeatedGrowth) {
    Rng rng(8);
    DynamicGraph expected_graph = barabasi_albert(60, 2, rng);
    PageRankEngine engine(expected_graph, cluster_config(3));
    engine.initialize();
    for (int round = 0; round < 3; ++round) {
        GrowthConfig gc;
        gc.num_new = 10;
        Rng brng(100 + round);
        const auto batch = grow_batch(expected_graph.num_vertices(), gc, brng);
        engine.add_vertices(batch);
        engine.run_to_convergence();
        expected_graph.add_vertices(batch.num_new);
        for (const Edge& e : batch.edges) {
            expected_graph.add_edge(e.u, e.v, e.weight);
        }
    }
    const auto expected = exact_pagerank(expected_graph);
    const auto actual = engine.scores();
    for (std::size_t v = 0; v < expected.size(); ++v) {
        EXPECT_NEAR(actual[v], expected[v], 1e-6);
    }
}

}  // namespace
}  // namespace aa
