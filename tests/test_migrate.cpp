// Incremental shard-migration contract tests.
//
// Two load-bearing properties from ISSUE 9:
//
//   1. Identity shard map — while no shard is repointed, the two-level
//      vertex -> shard -> rank indirection is *pure refactor*: every
//      distance, closeness score, simulated second and telemetry span is
//      bit-identical between shards_per_rank = 8 (the new default) and
//      shards_per_rank = 1 (the historical flat map), across the full
//      P x backend x wire-format x sync/async lattice.
//
//   2. Migration correctness — migrate_shards mid-RC (partially converged
//      state, marked rows, in-flight updates) must land the engine, at
//      quiescence, bit-identical to a from-scratch engine on the final
//      graph; and it must compose with deletions, checkpointing, and the
//      telemetry-driven auto planner.
#include <gtest/gtest.h>

#include <bit>
#include <sstream>
#include <tuple>
#include <vector>

#include "core/baseline.hpp"
#include "core/engine.hpp"
#include "core/strategies.hpp"
#include "graph/generators.hpp"

namespace aa {
namespace {

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

GrowthBatch make_batch(std::size_t host_vertices, std::size_t count,
                       std::uint64_t seed) {
    GrowthConfig gc;
    gc.num_new = count;
    gc.communities = 2;
    gc.intra_edges = 2;
    gc.host_edges = 2;
    Rng rng(seed);
    return grow_batch(host_vertices, gc, rng);
}

/// First populated shard owned by `rank` — migration tests move real rows.
ShardId populated_shard_of(const ShardOwnership& ownership, RankId rank) {
    for (ShardId s = 0; s < ownership.num_shards(); ++s) {
        if (ownership.rank_of(s) == rank && !ownership.shard_vertices(s).empty()) {
            return s;
        }
    }
    return kInvalidShard;
}

/// The migration acceptance bar: distances and closeness bit-identical to a
/// from-scratch engine (same config, no migration) on the final graph.
void expect_matches_fresh(const AnytimeEngine& engine,
                          const DynamicGraph& final_graph,
                          EngineConfig config) {
    config.auto_migrate = false;
    AnytimeEngine fresh(final_graph, config);
    fresh.initialize();
    fresh.run_to_quiescence();
    const auto got = engine.full_distance_matrix();
    const auto want = fresh.full_distance_matrix();
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t v = 0; v < want.size(); ++v) {
        for (std::size_t t = 0; t < want.size(); ++t) {
            ASSERT_EQ(bits(got[v][t]), bits(want[v][t]))
                << "d(" << v << "," << t << ") = " << got[v][t] << " want "
                << want[v][t];
        }
    }
    const ClosenessScores got_scores = engine.closeness();
    const ClosenessScores want_scores = fresh.closeness();
    ASSERT_EQ(got_scores.closeness.size(), want_scores.closeness.size());
    for (std::size_t v = 0; v < want_scores.closeness.size(); ++v) {
        EXPECT_EQ(bits(got_scores.closeness[v]), bits(want_scores.closeness[v]))
            << "closeness(" << v << ")";
        EXPECT_EQ(got_scores.reachable[v], want_scores.reachable[v])
            << "reachable(" << v << ")";
    }
}

// ---------------------------------------------------------------------------
// 1. Identity shard map: spr = 8 vs spr = 1, bit for bit, full lattice.
// ---------------------------------------------------------------------------

struct RunResult {
    std::vector<std::vector<Weight>> matrix;
    ClosenessScores scores;
    double sim_seconds{0};
    std::size_t rc_steps{0};
    std::vector<MetricSpan> spans;
};

RunResult run_scenario(std::uint32_t ranks, BackendKind backend,
                       BoundaryWireFormat wire, bool rc_async,
                       std::uint32_t shards_per_rank) {
    Rng rng(987);
    DynamicGraph g = barabasi_albert(72, 2, rng, WeightRange{1.0, 3.0});

    EngineConfig config;
    config.num_ranks = ranks;
    config.ia_threads = 2;
    config.seed = 0x54A2D + ranks;
    config.backend = backend;
    config.wire_format = wire;
    config.rc_async = rc_async;
    config.shards_per_rank = shards_per_rank;
    config.enable_metrics = true;

    AnytimeEngine engine(g, config);
    engine.initialize();
    engine.run_rc_steps(2);

    // Mid-RC addition batch: seeding, ghost routing and dirty marking all
    // resolve ownership through the shard map.
    const auto batch = make_batch(g.num_vertices(), 5, 4242);
    RoundRobinPS strategy;
    engine.apply_addition(batch, strategy);
    engine.run_to_quiescence();

    RunResult result;
    result.matrix = engine.full_distance_matrix();
    result.scores = engine.closeness();
    result.sim_seconds = engine.sim_seconds();
    result.rc_steps = engine.rc_steps_completed();
    result.spans = engine.metrics().spans();
    return result;
}

void expect_bit_identical(const RunResult& a, const RunResult& b) {
    // EXPECT_EQ on doubles is exact comparison — bit-identical, not "close".
    EXPECT_EQ(a.sim_seconds, b.sim_seconds);
    EXPECT_EQ(a.rc_steps, b.rc_steps);
    ASSERT_EQ(a.matrix.size(), b.matrix.size());
    for (std::size_t v = 0; v < a.matrix.size(); ++v) {
        ASSERT_EQ(a.matrix[v], b.matrix[v]) << "row " << v;
    }
    ASSERT_EQ(a.scores.closeness, b.scores.closeness);
    ASSERT_EQ(a.scores.reachable, b.scores.reachable);
    ASSERT_EQ(a.spans.size(), b.spans.size());
    for (std::size_t i = 0; i < a.spans.size(); ++i) {
        EXPECT_EQ(a.spans[i].name, b.spans[i].name) << "span " << i;
        EXPECT_EQ(a.spans[i].rank, b.spans[i].rank) << "span " << i;
        EXPECT_EQ(a.spans[i].step, b.spans[i].step) << "span " << i;
        EXPECT_EQ(a.spans[i].t_begin, b.spans[i].t_begin)
            << "span " << i << " (" << a.spans[i].name << ")";
        EXPECT_EQ(a.spans[i].t_end, b.spans[i].t_end)
            << "span " << i << " (" << a.spans[i].name << ")";
        EXPECT_EQ(a.spans[i].ops, b.spans[i].ops)
            << "span " << i << " (" << a.spans[i].name << ")";
    }
}

using Param = std::tuple<std::uint32_t /*ranks*/, BackendKind,
                         BoundaryWireFormat, bool /*rc_async*/>;

class MigrateIdentityLattice : public ::testing::TestWithParam<Param> {};

TEST_P(MigrateIdentityLattice, ShardedMapMatchesFlatMapBitIdentically) {
    const auto [ranks, backend, wire, rc_async] = GetParam();
    const RunResult sharded = run_scenario(ranks, backend, wire, rc_async, 8);
    const RunResult flat = run_scenario(ranks, backend, wire, rc_async, 1);
    expect_bit_identical(sharded, flat);
}

INSTANTIATE_TEST_SUITE_P(
    Lattice, MigrateIdentityLattice,
    ::testing::Combine(
        ::testing::Values(2u, 4u, 8u),
        ::testing::Values(BackendKind::Sequential, BackendKind::Threaded),
        ::testing::Values(BoundaryWireFormat::V1Aos, BoundaryWireFormat::V2Soa),
        ::testing::Bool()),
    [](const ::testing::TestParamInfo<Param>& p) {
        return "r" + std::to_string(std::get<0>(p.param)) +
               (std::get<1>(p.param) == BackendKind::Threaded ? "_thr"
                                                              : "_seq") +
               (std::get<2>(p.param) == BoundaryWireFormat::V2Soa ? "_v2"
                                                                  : "_v1") +
               (std::get<3>(p.param) ? "_async" : "_sync");
    });

// ---------------------------------------------------------------------------
// 2. Migration protocol correctness.
// ---------------------------------------------------------------------------

class MigrateProtocol
    : public ::testing::TestWithParam<std::tuple<BoundaryWireFormat, bool>> {
protected:
    EngineConfig base_config(std::uint32_t ranks) const {
        EngineConfig config;
        config.num_ranks = ranks;
        config.seed = 77;
        config.wire_format = std::get<0>(GetParam());
        config.rc_async = std::get<1>(GetParam());
        return config;
    }
};

TEST_P(MigrateProtocol, MidRcMigrationConvergesLikeFromScratch) {
    // Unit weights: path sums are exact, so the from-scratch comparison is
    // bit-for-bit (same bar as the shrink tests).
    Rng rng(5);
    DynamicGraph g = barabasi_albert(64, 2, rng);
    const EngineConfig config = base_config(4);
    AnytimeEngine engine(g, config);
    engine.initialize();
    engine.run_rc_steps(1);  // partially converged: rows still marked

    // A growth batch right before the migration leaves freshly seeded rows
    // and pending boundary updates for the drain phase to flush.
    const auto batch = make_batch(g.num_vertices(), 6, 99);
    RoundRobinPS strategy;
    engine.apply_addition(batch, strategy);

    const ShardId moving = populated_shard_of(engine.shard_ownership(), 0);
    ASSERT_NE(moving, kInvalidShard);
    const auto members = engine.shard_ownership().shard_vertices(moving);
    const std::vector<ShardMove> moves{{moving, 0, 3}};
    engine.migrate_shards(moves);

    // The map repointed exactly the moved shard's vertices...
    for (const VertexId v : members) {
        EXPECT_EQ(engine.shard_ownership().owner(v), 3u);
    }
    EXPECT_EQ(engine.report().shard_migrations, 1u);
    EXPECT_EQ(engine.report().migrated_rows, members.size());

    // ...and convergence lands on the exact final-graph state.
    engine.run_to_quiescence();
    expect_matches_fresh(engine, apply_batch(g, batch), config);
}

TEST_P(MigrateProtocol, MigrationComposesWithDeletion) {
    Rng rng(6);
    DynamicGraph g = barabasi_albert(56, 2, rng);
    const EngineConfig config = base_config(4);
    AnytimeEngine engine(g, config);
    engine.initialize();
    engine.run_to_quiescence();

    // Move one shard each off ranks 0 and 1, then shrink the graph: the
    // invalidate/re-settle cascade must route suspects through the migrated
    // map, including rows that now live on a different rank.
    std::vector<ShardMove> moves;
    const ShardId s0 = populated_shard_of(engine.shard_ownership(), 0);
    const ShardId s1 = populated_shard_of(engine.shard_ownership(), 1);
    ASSERT_NE(s0, kInvalidShard);
    ASSERT_NE(s1, kInvalidShard);
    moves.push_back({s0, 0, 2});
    moves.push_back({s1, 1, 3});
    engine.migrate_shards(moves);
    EXPECT_EQ(engine.report().shard_migrations, 2u);

    ShrinkBatch shrink;
    const auto edges = g.edges();
    for (std::size_t i = 0; i < edges.size() && shrink.deletions.size() < 4;
         i += edges.size() / 4) {
        shrink.deletions.push_back(edges[i]);
    }
    engine.apply_deletion(shrink);
    engine.run_to_quiescence();

    DynamicGraph final_graph = g;
    for (const Edge& e : shrink.deletions) {
        final_graph.remove_edge(e.u, e.v);
    }
    expect_matches_fresh(engine, final_graph, config);
}

TEST_P(MigrateProtocol, CheckpointRoundTripPreservesMigratedMap) {
    Rng rng(7);
    DynamicGraph g = barabasi_albert(48, 2, rng);
    const EngineConfig config = base_config(3);
    AnytimeEngine engine(g, config);
    engine.initialize();
    engine.run_to_quiescence();

    const ShardId moving = populated_shard_of(engine.shard_ownership(), 1);
    ASSERT_NE(moving, kInvalidShard);
    const std::vector<ShardMove> moves{{moving, 1, 0}};
    engine.migrate_shards(moves);
    engine.run_to_quiescence();

    std::stringstream buffer;
    engine.save_checkpoint(buffer);
    AnytimeEngine restored = AnytimeEngine::load_checkpoint(buffer, config);

    // The migrated two-level map survives the round trip exactly — a flat
    // from_partition rebuild could not reproduce the repointed shard.
    EXPECT_EQ(restored.shard_ownership(), engine.shard_ownership());
    EXPECT_EQ(restored.shard_ownership().rank_of(moving), 0u);

    restored.run_to_quiescence();
    const auto got = restored.full_distance_matrix();
    const auto want = engine.full_distance_matrix();
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t v = 0; v < want.size(); ++v) {
        ASSERT_EQ(got[v], want[v]) << "row " << v;
    }
}

TEST_P(MigrateProtocol, BogusMovesAreSkippedEntirely) {
    Rng rng(8);
    DynamicGraph g = barabasi_albert(40, 2, rng);
    const EngineConfig config = base_config(2);
    AnytimeEngine engine(g, config);
    engine.initialize();
    engine.run_to_quiescence();
    const auto before = engine.shard_ownership();

    const std::vector<ShardMove> moves{
        {kInvalidShard, 0, 1},              // unknown shard
        {0, 1, 1},                          // stale `from` (shard 0 is rank 0's)
        {0, 0, 0},                          // self-move
        {0, 0, 99},                         // rank out of range
    };
    engine.migrate_shards(moves);
    EXPECT_EQ(engine.shard_ownership(), before);
    EXPECT_EQ(engine.report().shard_migrations, 0u);
    EXPECT_EQ(engine.report().migrated_rows, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Wire, MigrateProtocol,
    ::testing::Combine(::testing::Values(BoundaryWireFormat::V1Aos,
                                         BoundaryWireFormat::V2Soa),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<BoundaryWireFormat, bool>>&
           p) {
        return std::string(std::get<0>(p.param) == BoundaryWireFormat::V2Soa
                               ? "v2"
                               : "v1") +
               (std::get<1>(p.param) ? "_async" : "_sync");
    });

// ---------------------------------------------------------------------------
// 3. Telemetry-driven auto migration.
// ---------------------------------------------------------------------------

TEST(MigrateAuto, PlannerSeesSkewAndAutoMigrationRebalances) {
    Rng rng(9);
    DynamicGraph g = barabasi_albert(64, 2, rng);
    EngineConfig config;
    config.num_ranks = 4;
    config.seed = 13;
    config.auto_migrate = true;
    config.migrate_max_shards = 1;
    config.migrate_imbalance_threshold = 1.25;
    AnytimeEngine engine(g, config);
    engine.initialize();
    engine.run_to_quiescence();

    // Manufacture a hotspot: pile most of rank 1's shards onto rank 0, so
    // rank 0 owns ~2x the rows and measurably does ~2x the relax work.
    std::vector<ShardMove> skew;
    for (ShardId s = 0; s < engine.shard_ownership().num_shards(); ++s) {
        if (engine.shard_ownership().rank_of(s) == 1 && skew.size() < 7) {
            skew.push_back({s, 1, 0});
        }
    }
    ASSERT_EQ(skew.size(), 7u);
    engine.migrate_shards(skew);
    const std::size_t manual = engine.report().shard_migrations;
    EXPECT_EQ(manual, 7u);

    // Drive load through the skewed assignment: two growth batches keep the
    // RC loop busy long enough for the EWMA to see the imbalance and for the
    // boundary hook to act on it.
    RoundRobinPS strategy;
    engine.apply_addition(make_batch(engine.num_vertices(), 8, 21), strategy);
    engine.run_to_quiescence();
    engine.apply_addition(make_batch(engine.num_vertices(), 8, 22), strategy);
    engine.run_to_quiescence();

    // The planner moved at least one shard back off the hot rank...
    EXPECT_GT(engine.report().shard_migrations, manual);

    // ...and auto migration never compromises the converged state.
    DynamicGraph final_graph(engine.graph());
    expect_matches_fresh(engine, final_graph, config);
}

TEST(MigrateAuto, DisabledPlannerStillObservesButNeverMoves) {
    Rng rng(10);
    DynamicGraph g = barabasi_albert(48, 2, rng);
    EngineConfig config;
    config.num_ranks = 3;
    config.seed = 15;  // auto_migrate stays default-off
    AnytimeEngine engine(g, config);
    engine.initialize();
    engine.run_to_quiescence();
    EXPECT_GT(engine.migration_planner().observations(), 0u);
    EXPECT_EQ(engine.report().shard_migrations, 0u);
}

}  // namespace
}  // namespace aa
