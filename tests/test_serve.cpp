// The anytime query-serving layer: versioned snapshot publication, point /
// batch / top-k queries, freshness policies, admission control, and the
// monotone-quality guarantee across successive snapshots. The *Concurrent*
// cases are the ThreadSanitizer targets (reader threads hammer the snapshot
// store while the driver thread runs the engine to quiescence).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/closeness.hpp"
#include "core/edge_delete.hpp"
#include "core/engine.hpp"
#include "core/quality.hpp"
#include "core/strategies.hpp"
#include "graph/generators.hpp"
#include "refine/demand.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "serve/topk.hpp"
#include "shard/migration.hpp"

namespace aa {
namespace {

EngineConfig serve_config(std::uint32_t ranks) {
    EngineConfig config;
    config.num_ranks = ranks;
    config.ia_threads = 1;
    config.seed = 77;
    return config;
}

/// Engine + attached service over a BA graph, initialized (so snapshot #1
/// exists) but not yet converged.
struct Fixture {
    AnytimeEngine engine;
    QueryService service;

    explicit Fixture(std::size_t n, std::uint32_t ranks, ServeConfig sc = {},
                     std::uint64_t seed = 3)
        : engine(
              [&] {
                  Rng rng(seed);
                  return barabasi_albert(n, 2, rng);
              }(),
              serve_config(ranks)),
          service((engine.initialize(), engine), sc) {}
};

TEST(Serve, SnapshotVersionsStrictlyIncrease) {
    Fixture f(80, 4);
    std::vector<std::uint64_t> versions;
    f.service.set_on_publish([&](const ResultSnapshot& s) {
        versions.push_back(s.version);
    });

    f.engine.run_rc_steps(2);
    GrowthConfig gc;
    gc.num_new = 8;
    Rng rng(9);
    const auto batch = grow_batch(f.engine.num_vertices(), gc, rng);
    RoundRobinPS strategy;
    f.engine.apply_addition(batch, strategy);
    f.engine.run_to_quiescence();
    f.service.publish();

    ASSERT_GE(versions.size(), 4u);  // 2 steps + add + >=1 converge step + manual
    for (std::size_t i = 1; i < versions.size(); ++i) {
        EXPECT_LT(versions[i - 1], versions[i]);
    }
    // The initial publication (version 1) predates the observer; the stream
    // continues right after it.
    EXPECT_EQ(versions.front(), 2u);
    EXPECT_EQ(f.service.snapshot()->version, versions.back());
    EXPECT_EQ(f.service.publications(), versions.back());
}

TEST(Serve, MidRcQueryMatchesMatrixClosenessBitIdentical) {
    Fixture f(90, 5);
    // At every publication boundary the engine is idle, so the snapshot and
    // the matrix-derived closeness describe the same state; the contract is
    // bit-identity, hence EXPECT_EQ on doubles.
    std::size_t checked = 0;
    f.service.set_on_publish([&](const ResultSnapshot& s) {
        const auto expected = closeness_from_matrix(
            f.engine.full_distance_matrix(), f.engine.config().closeness_variant);
        ASSERT_EQ(s.scores.size(), expected.closeness.size());
        for (std::size_t v = 0; v < expected.closeness.size(); ++v) {
            EXPECT_EQ(s.scores.closeness(v), expected.closeness[v]);
            EXPECT_EQ(s.scores.reachable(v), expected.reachable[v]);
        }
        ++checked;
    });

    // Step one at a time and query between steps, well before quiescence.
    for (int step = 0; step < 3 && f.engine.rc_step(); ++step) {
        const auto snapshot = f.service.snapshot();
        const auto expected = closeness_from_matrix(
            f.engine.full_distance_matrix(), f.engine.config().closeness_variant);
        for (VertexId v = 0; v < 10; ++v) {
            const auto r = f.service.point(v, FreshnessPolicy::ServeStale);
            ASSERT_EQ(r.meta.status, QueryStatus::Ok);
            EXPECT_EQ(r.meta.version, snapshot->version);
            EXPECT_EQ(r.closeness, expected.closeness[v]);
            EXPECT_EQ(r.reachable, expected.reachable[v]);
        }
    }
    EXPECT_GE(checked, 3u);
}

TEST(Serve, RawVariantFlowsThroughSnapshots) {
    // Same bit-identity when the engine is configured for the paper's raw
    // inverse-sum variant instead of the corrected default.
    Rng rng(4);
    auto g = barabasi_albert(70, 2, rng);
    EngineConfig config = serve_config(4);
    config.closeness_variant = ClosenessVariant::Raw;
    AnytimeEngine engine(std::move(g), config);
    engine.initialize();
    QueryService service(engine);
    engine.run_rc_steps(1);
    const auto snapshot = service.snapshot();
    const auto expected = closeness_from_matrix(engine.full_distance_matrix(),
                                                ClosenessVariant::Raw);
    for (std::size_t v = 0; v < expected.closeness.size(); ++v) {
        EXPECT_EQ(snapshot->scores.closeness(v), expected.closeness[v]);
    }
}

TEST(Serve, TopKEqualsFullSortOfSnapshot) {
    Fixture f(100, 4);
    const std::size_t k = 7;
    while (true) {
        const bool progressed = f.engine.rc_step();
        const auto snapshot = f.service.snapshot();
        const auto result = f.service.topk(k, FreshnessPolicy::ServeStale);
        ASSERT_EQ(result.meta.status, QueryStatus::Ok);
        ASSERT_EQ(result.meta.version, snapshot->version);

        // Reference: a full sort of the same snapshot's scores.
        const auto ranking = closeness_ranking(snapshot->scores.materialize());
        ASSERT_EQ(result.entries.size(), k);
        for (std::size_t i = 0; i < k; ++i) {
            EXPECT_EQ(result.entries[i].vertex, ranking[i]);
            EXPECT_EQ(result.entries[i].score,
                      snapshot->scores.closeness(ranking[i]));
        }
        if (!progressed) {
            break;
        }
    }
    // k beyond the maintained ranking falls back to full selection and must
    // agree with the same reference.
    const auto snapshot = f.service.snapshot();
    const auto big = f.service.topk(23, FreshnessPolicy::ServeStale);
    const auto ranking = closeness_ranking(snapshot->scores.materialize());
    ASSERT_EQ(big.entries.size(), 23u);
    for (std::size_t i = 0; i < big.entries.size(); ++i) {
        EXPECT_EQ(big.entries[i].vertex, ranking[i]);
    }
}

TEST(Serve, IncrementalTopKPatchesBetweenSnapshots) {
    // Drive the tracker directly over the engine's snapshot stream: entries
    // must stay bit-identical to a full selection at every version, and the
    // consecutive-version stream must exercise the patch path.
    Rng rng(11);
    auto g = barabasi_albert(120, 2, rng);
    AnytimeEngine engine(std::move(g), serve_config(6));
    engine.initialize();

    IncrementalTopK tracker(9);
    std::uint64_t version = 0;
    std::shared_ptr<ResultSnapshot> previous;
    const auto check = [&] {
        auto snapshot = build_snapshot(engine, ++version, previous.get());
        tracker.apply(*snapshot);
        EXPECT_EQ(tracker.entries(), topk_from_snapshot(*snapshot, 9))
            << "version " << version;
        previous = std::move(snapshot);
    };

    check();  // initial: rebuild
    while (engine.rc_step()) {
        check();
    }
    GrowthConfig gc;
    gc.num_new = 10;
    Rng brng(5);
    const auto batch = grow_batch(engine.num_vertices(), gc, brng);
    RoundRobinPS strategy;
    engine.apply_addition(batch, strategy);
    check();
    while (engine.rc_step()) {
        check();
    }

    EXPECT_GT(tracker.patched(), 0u);
    EXPECT_GE(tracker.rebuilt(), 1u);  // at least the initial build
}

TEST(Serve, CowScoresBuildSharesUntouchedChunks) {
    // Pin the copy-on-write memory behaviour at the chunk level: a chunk is
    // shared with the previous snapshot iff no changed vertex lands in it and
    // its size is compatible; everything else is freshly copied.
    const std::size_t n = CowScores::kChunkSize * 2 + 10;
    std::vector<Weight> c1(n);
    std::vector<std::size_t> r1(n);
    for (std::size_t v = 0; v < n; ++v) {
        c1[v] = 0.5 * static_cast<Weight>(v);
        r1[v] = v;
    }
    const CowScores a = CowScores::build(c1, r1, nullptr, {});
    ASSERT_EQ(a.num_chunks(), 3u);
    ASSERT_EQ(a.size(), n);

    // One change in the middle chunk: chunks 0 and 2 share, chunk 1 copies.
    auto c2 = c1;
    const VertexId touched = static_cast<VertexId>(CowScores::kChunkSize + 3);
    c2[touched] = 99;
    const std::vector<VertexId> changed{touched};
    const CowScores b = CowScores::build(c2, r1, &a, changed);
    EXPECT_EQ(b.chunk(0), a.chunk(0));
    EXPECT_NE(b.chunk(1), a.chunk(1));
    EXPECT_EQ(b.chunk(2), a.chunk(2));

    // Accessors and materialize() agree with the plain planes.
    const ClosenessScores plain = b.materialize();
    EXPECT_EQ(plain.closeness, c2);
    EXPECT_EQ(plain.reachable, r1);
    EXPECT_EQ(b.closeness(touched), 99.0);
    EXPECT_EQ(b.reachable(touched), static_cast<std::size_t>(touched));

    // Growth: the tail chunk changes size, so it is never shared even though
    // the only changed vertex is the new one.
    auto c3 = c2;
    auto r3 = r1;
    c3.push_back(1);
    r3.push_back(2);
    const std::vector<VertexId> grew{static_cast<VertexId>(n)};
    const CowScores c = CowScores::build(c3, r3, &b, grew);
    EXPECT_EQ(c.chunk(0), b.chunk(0));
    EXPECT_EQ(c.chunk(1), b.chunk(1));
    EXPECT_NE(c.chunk(2), b.chunk(2));
}

TEST(Serve, CowQuiescentRepublicationSharesEveryChunk) {
    // An out-of-band publication of an unchanged engine must not copy the
    // score planes at all: every chunk of the new snapshot is the previous
    // snapshot's chunk. This is the memory contract that makes per-boundary
    // publication cheap once the engine settles.
    Fixture f(600, 4);  // 600 vertices -> 3 chunks of 256
    f.engine.run_to_quiescence();
    const auto before = f.service.snapshot();
    f.service.publish();
    const auto after = f.service.snapshot();
    ASSERT_NE(before, after);
    ASSERT_TRUE(after->changed.empty());
    ASSERT_EQ(before->scores.num_chunks(), after->scores.num_chunks());
    ASSERT_GE(after->scores.num_chunks(), 3u);
    for (std::size_t i = 0; i < after->scores.num_chunks(); ++i) {
        EXPECT_EQ(before->scores.chunk(i), after->scores.chunk(i))
            << "chunk " << i;
    }
}

TEST(Serve, IncrementalTopKAbsorbsInReserveDemotion) {
    // Score *decreases* (the fully-dynamic workload): a hub demoted out of
    // the served top-k but not out of the maintained reserve must be evicted
    // by a patch; a demotion past the reserve must force the rebuild the
    // soundness threshold demands. Synthetic snapshots pin both paths.
    const std::size_t n = 10;
    const auto make = [&](std::uint64_t version,
                          const std::vector<Weight>& scores,
                          std::vector<VertexId> changed) {
        ResultSnapshot s;
        s.version = version;
        ClosenessScores plain;
        plain.closeness = scores;
        plain.reachable.assign(n, n);
        s.scores = CowScores::from(plain);
        s.changed = std::move(changed);
        return s;
    };
    std::vector<Weight> scores;
    for (std::size_t v = 0; v < n; ++v) {
        scores.push_back(1.0 - 0.05 * static_cast<Weight>(v));
    }

    IncrementalTopK tracker(3);  // reserve depth = 6
    ResultSnapshot s1 = make(1, scores, {});
    tracker.apply(s1);
    EXPECT_EQ(tracker.entries(), topk_from_snapshot(s1, 3));
    ASSERT_EQ(tracker.reserve().size(), 6u);
    EXPECT_EQ(tracker.rebuilt(), 1u);

    // Demote vertex 0 from rank 1 to rank 5: outside the top-3, inside the
    // reserve. The reserve boundary (vertex 5's bits) is untouched → patch.
    scores[0] = 0.77;
    ResultSnapshot s2 = make(2, scores, {0});
    tracker.apply(s2);
    EXPECT_EQ(tracker.entries(), topk_from_snapshot(s2, 3));
    EXPECT_EQ(tracker.patched(), 1u);
    EXPECT_EQ(tracker.rebuilt(), 1u);
    EXPECT_EQ(tracker.entries()[0].vertex, 1u);

    // Demote vertex 1 below the reserve: an unchanged outsider could now
    // deserve a slot, so the threshold check must force a rebuild.
    scores[1] = 0.10;
    ResultSnapshot s3 = make(3, scores, {1});
    tracker.apply(s3);
    EXPECT_EQ(tracker.entries(), topk_from_snapshot(s3, 3));
    EXPECT_EQ(tracker.patched(), 1u);
    EXPECT_EQ(tracker.rebuilt(), 2u);
}

TEST(Serve, IncrementalTopKTracksHubShrink) {
    // End-to-end hub-shrink regression: delete the reigning hub's edges via
    // the shrink path and keep the tracker bit-identical to a full selection
    // across the whole (non-monotone) snapshot stream. The changed list must
    // name the invalidated hub — that is what lets the patch see the demotion.
    Rng rng(13);
    DynamicGraph g = barabasi_albert(100, 3, rng);
    const DynamicGraph host = g;
    AnytimeEngine engine(std::move(g), serve_config(4));
    engine.initialize();
    engine.run_to_quiescence();

    IncrementalTopK tracker(5);
    std::uint64_t version = 0;
    std::shared_ptr<ResultSnapshot> previous;
    const auto advance = [&] {
        auto snapshot = build_snapshot(engine, ++version, previous.get());
        tracker.apply(*snapshot);
        ASSERT_EQ(tracker.entries(), topk_from_snapshot(*snapshot, 5))
            << "version " << version;
        previous = std::move(snapshot);
    };
    advance();

    const VertexId hub = tracker.entries().front().vertex;
    ShrinkBatch batch;
    for (const Neighbor& nb : host.neighbors(hub)) {
        batch.deletions.push_back({hub, nb.to, 0.0});
        if (batch.deletions.size() == host.neighbors(hub).size() - 1) {
            break;  // keep one edge: shrink the hub, don't isolate it
        }
    }
    engine.apply_deletion(batch);
    advance();  // mid-settle snapshot: scores already reflect invalidation
    ASSERT_NE(std::find(previous->changed.begin(), previous->changed.end(),
                        hub),
              previous->changed.end())
        << "invalidated hub missing from the changed list";
    while (engine.rc_step()) {
        advance();
    }
    EXPECT_NE(tracker.entries().front().vertex, hub);
}

TEST(Serve, FreshnessPoliciesWithSyncStepDriver) {
    Fixture f(80, 4);
    f.service.set_step_driver([&] { return f.engine.rc_step(); });

    // ServeStale: answers from the current snapshot, no engine progress.
    const auto v0 = f.service.snapshot()->version;
    const auto steps0 = f.engine.rc_steps_completed();
    const auto stale = f.service.point(3, FreshnessPolicy::ServeStale);
    EXPECT_EQ(stale.meta.status, QueryStatus::Ok);
    EXPECT_EQ(stale.meta.version, v0);
    EXPECT_EQ(f.engine.rc_steps_completed(), steps0);

    // WaitForNextStep: advances the engine and serves a strictly newer
    // snapshot.
    const auto next = f.service.point(3, FreshnessPolicy::WaitForNextStep);
    EXPECT_EQ(next.meta.status, QueryStatus::Ok);
    EXPECT_GT(next.meta.version, v0);
    EXPECT_GT(f.engine.rc_steps_completed(), steps0);

    // WaitForQuiescence: runs to convergence; the served values are exact.
    const auto exact = exact_closeness(f.engine.graph(),
                                       f.engine.config().closeness_variant);
    const auto settled = f.service.point(3, FreshnessPolicy::WaitForQuiescence);
    EXPECT_EQ(settled.meta.status, QueryStatus::Ok);
    EXPECT_TRUE(settled.meta.quiescent);
    EXPECT_TRUE(f.engine.quiescent());
    EXPECT_NEAR(settled.closeness, exact.closeness[3], 1e-9);

    // Quiescent engine, WaitForNextStep: the out-of-band publication still
    // yields one fresher (and quiescent) snapshot rather than hanging.
    const auto after = f.service.point(4, FreshnessPolicy::WaitForNextStep);
    EXPECT_EQ(after.meta.status, QueryStatus::Ok);
    EXPECT_GT(after.meta.version, settled.meta.version);
    EXPECT_TRUE(after.meta.quiescent);
}

TEST(Serve, AdmissionControlShedsWhenPendingFull) {
    ServeConfig sc;
    sc.max_pending = 0;  // no waiting capacity at all
    Fixture f(60, 4, sc);
    // No step driver and no concurrent publisher: a waiting policy must be
    // shed immediately instead of queueing.
    const auto r = f.service.point(1, FreshnessPolicy::WaitForNextStep);
    EXPECT_EQ(r.meta.status, QueryStatus::Shed);
    EXPECT_EQ(f.service.shed_count(), 1u);
    // ServeStale is never subject to admission control.
    const auto ok = f.service.point(1, FreshnessPolicy::ServeStale);
    EXPECT_EQ(ok.meta.status, QueryStatus::Ok);
}

TEST(Serve, BatchIsConsistentWithinOneSnapshot) {
    Fixture f(80, 4);
    f.engine.run_rc_steps(1);
    const std::vector<VertexId> vs{0, 5, 17, 42, 79};
    const auto result = f.service.batch(vs, FreshnessPolicy::ServeStale);
    ASSERT_EQ(result.meta.status, QueryStatus::Ok);
    ASSERT_EQ(result.closeness.size(), vs.size());
    const auto snapshot = f.service.snapshot();
    ASSERT_EQ(snapshot->version, result.meta.version);
    for (std::size_t i = 0; i < vs.size(); ++i) {
        EXPECT_EQ(result.closeness[i], snapshot->scores.closeness(vs[i]));
        EXPECT_EQ(result.reachable[i], snapshot->scores.reachable(vs[i]));
    }
}

TEST(Serve, MonotoneQualityAcrossSnapshots) {
    // The paper's anytime property, observed through the serving surface:
    // every published snapshot is at least as good as its predecessor.
    Rng rng(6);
    auto g = barabasi_albert(90, 2, rng);
    const auto exact = exact_apsp(g);
    AnytimeEngine engine(std::move(g), serve_config(6));
    engine.initialize();
    QueryService service(engine);

    std::vector<QualityMetrics> quality;
    std::vector<double> frac_unknown;
    service.set_on_publish([&](const ResultSnapshot& s) {
        quality.push_back(evaluate_quality(engine.full_distance_matrix(), exact));
        frac_unknown.push_back(s.frac_unknown);
    });
    service.publish();  // baseline right after IA
    engine.run_to_quiescence();

    ASSERT_GE(quality.size(), 2u);
    for (std::size_t i = 1; i < quality.size(); ++i) {
        EXPECT_TRUE(quality_monotone(quality[i - 1], quality[i])) << "snapshot " << i;
        EXPECT_LE(frac_unknown[i], frac_unknown[i - 1] + 1e-12) << "snapshot " << i;
    }
    EXPECT_NEAR(quality.back().frac_exact, 1.0, 1e-12);
    EXPECT_EQ(frac_unknown.back(), 0.0);
}

TEST(Serve, StalenessMetaTracksSupersededSnapshots) {
    Fixture f(60, 4);
    const auto held = f.service.snapshot();  // pin the current snapshot
    f.engine.run_rc_steps(2);
    // The held snapshot is now behind; a fresh query is not.
    EXPECT_GE(f.service.store().latest_version(), held->version + 2);
    const auto fresh = f.service.point(0, FreshnessPolicy::ServeStale);
    EXPECT_EQ(fresh.meta.staleness_versions, 0u);
    EXPECT_GE(fresh.meta.staleness_wall, 0.0);
}

// ---- concurrent cases (ThreadSanitizer targets) ---------------------------

TEST(Serve, ConcurrentReadersDuringConvergence) {
    Rng rng(8);
    auto g = barabasi_albert(140, 2, rng);
    AnytimeEngine engine(std::move(g), serve_config(4));
    engine.initialize();
    QueryService service(engine);

    std::atomic<bool> stop{false};
    std::atomic<std::size_t> served{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t) {
        readers.emplace_back([&, t] {
            // Reads route through per-shard planes, so version monotonicity
            // is promised per vertex (per shard), not across vertices: the
            // anchor pins one vertex per reader for the monotone check while
            // the roving queries exercise the rest of the surface.
            const VertexId anchor = static_cast<VertexId>(t);
            std::uint64_t last_version = 0;
            VertexId v = static_cast<VertexId>(t);
            while (!stop.load(std::memory_order_relaxed)) {
                const auto p = service.point(anchor, FreshnessPolicy::ServeStale);
                ASSERT_EQ(p.meta.status, QueryStatus::Ok);
                // Successive reads of the same vertex never go backwards.
                ASSERT_GE(p.meta.version, last_version);
                last_version = p.meta.version;
                const auto q = service.point(v % 140, FreshnessPolicy::ServeStale);
                ASSERT_EQ(q.meta.status, QueryStatus::Ok);
                const auto top = service.topk(5, FreshnessPolicy::ServeStale);
                ASSERT_EQ(top.meta.status, QueryStatus::Ok);
                ASSERT_EQ(top.entries.size(), 5u);
                const std::vector<VertexId> vs{v % 140, (v + 7) % 140};
                const auto b = service.batch(vs, FreshnessPolicy::ServeStale);
                ASSERT_EQ(b.meta.status, QueryStatus::Ok);
                served.fetch_add(1, std::memory_order_relaxed);
                v += 3;
            }
        });
    }

    // Driver: step, inject a batch mid-RC, converge — all while readers run.
    engine.run_rc_steps(2);
    GrowthConfig gc;
    gc.num_new = 12;
    Rng brng(13);
    const auto batch = grow_batch(engine.num_vertices(), gc, brng);
    RoundRobinPS strategy;
    engine.apply_addition(batch, strategy);
    engine.run_to_quiescence();

    // The engine may converge before the reader threads have even started;
    // snapshots keep being served after quiescence, so hold the service open
    // until every reader has demonstrably done work.
    while (served.load(std::memory_order_relaxed) < 50) {
        std::this_thread::yield();
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto& thread : readers) {
        thread.join();
    }
    EXPECT_GE(served.load(), 50u);
    EXPECT_TRUE(service.snapshot()->quiescent);
}

TEST(Serve, ConcurrentReadersWithThreadedBackend) {
    // Same workload as above, but the engine itself runs thread-per-rank: the
    // snapshot readers coexist with the ThreadedBackend's rank workers (the
    // publication happens on the driver thread at phase boundaries, so the
    // two thread populations only meet through the snapshot store).
    Rng rng(8);
    auto g = barabasi_albert(140, 2, rng);
    EngineConfig config = serve_config(4);
    config.backend = BackendKind::Threaded;
    AnytimeEngine engine(std::move(g), config);
    engine.initialize();
    QueryService service(engine);

    std::atomic<bool> stop{false};
    std::atomic<std::size_t> served{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t) {
        readers.emplace_back([&, t] {
            // Per-shard monotone reads: the version check anchors on one
            // fixed vertex per reader (see ConcurrentReadersDuringConvergence).
            const VertexId anchor = static_cast<VertexId>(t);
            std::uint64_t last_version = 0;
            VertexId v = static_cast<VertexId>(t);
            while (!stop.load(std::memory_order_relaxed)) {
                const auto p = service.point(anchor, FreshnessPolicy::ServeStale);
                ASSERT_EQ(p.meta.status, QueryStatus::Ok);
                ASSERT_GE(p.meta.version, last_version);
                last_version = p.meta.version;
                const auto q = service.point(v % 140, FreshnessPolicy::ServeStale);
                ASSERT_EQ(q.meta.status, QueryStatus::Ok);
                const auto top = service.topk(5, FreshnessPolicy::ServeStale);
                ASSERT_EQ(top.meta.status, QueryStatus::Ok);
                served.fetch_add(1, std::memory_order_relaxed);
                v += 3;
            }
        });
    }

    engine.run_rc_steps(2);
    GrowthConfig gc;
    gc.num_new = 12;
    Rng brng(13);
    const auto batch = grow_batch(engine.num_vertices(), gc, brng);
    RoundRobinPS strategy;
    engine.apply_addition(batch, strategy);
    engine.run_to_quiescence();

    while (served.load(std::memory_order_relaxed) < 50) {
        std::this_thread::yield();
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto& thread : readers) {
        thread.join();
    }
    EXPECT_TRUE(service.snapshot()->quiescent);
}

TEST(Serve, ConcurrentWaitForNextStepIsWokenByPublication) {
    Fixture f(70, 4);
    const auto before = f.service.snapshot()->version;
    std::atomic<bool> done{false};
    PointResult got;
    std::thread waiter([&] {
        got = f.service.point(2, FreshnessPolicy::WaitForNextStep);
        done.store(true, std::memory_order_release);
    });
    // WaitForNextStep is relative to the query's arrival, so the driver must
    // keep publishing until the waiter has been served — a single
    // publication could land before the query arrives.
    while (!done.load(std::memory_order_acquire)) {
        f.service.publish();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    waiter.join();
    EXPECT_EQ(got.meta.status, QueryStatus::Ok);
    EXPECT_GT(got.meta.version, before);
}

TEST(Serve, ConcurrentWaitForQuiescenceServesExactScores) {
    Rng rng(10);
    auto g = barabasi_albert(80, 2, rng);
    AnytimeEngine engine(std::move(g), serve_config(4));
    engine.initialize();
    QueryService service(engine);
    const auto exact = exact_closeness(engine.graph(),
                                       engine.config().closeness_variant);

    PointResult got;
    std::thread waiter([&] {
        got = service.point(1, FreshnessPolicy::WaitForQuiescence);
    });
    engine.run_to_quiescence();
    waiter.join();
    EXPECT_EQ(got.meta.status, QueryStatus::Ok);
    EXPECT_TRUE(got.meta.quiescent);
    EXPECT_NEAR(got.closeness, exact.closeness[1], 1e-9);
}

TEST(Serve, DeltaVsFullLatticeBitIdentical) {
    // The O(changed) delta publication path (with sharded planes) against
    // the full-rebuild path: bit-identical snapshots — scores, reachable,
    // changed list, frac_unknown, total_reachable, metadata — and identical
    // top-k at every checkpoint, across ranks × backend × wire format ×
    // sync/async RC, with a mid-RC addition, a deletion and a shard
    // migration in flight. Two engines run the identical deterministic
    // schedule; only the serving configuration differs.
    for (const std::uint32_t ranks : {2u, 4u, 8u}) {
        for (const BackendKind backend :
             {BackendKind::Sequential, BackendKind::Threaded}) {
            for (const BoundaryWireFormat wire :
                 {BoundaryWireFormat::V1Aos, BoundaryWireFormat::V2Soa}) {
                for (const bool rc_async : {false, true}) {
                    SCOPED_TRACE(std::string("ranks=") +
                                 std::to_string(ranks) + " backend=" +
                                 (backend == BackendKind::Threaded ? "thr"
                                                                   : "seq") +
                                 (wire == BoundaryWireFormat::V1Aos
                                      ? " v1aos"
                                      : " v2soa") +
                                 (rc_async ? " async" : " sync"));
                    const auto make_engine = [&] {
                        Rng rng(21);
                        auto g = barabasi_albert(72, 2, rng);
                        EngineConfig config = serve_config(ranks);
                        config.backend = backend;
                        config.wire_format = wire;
                        config.rc_async = rc_async;
                        auto engine = std::make_unique<AnytimeEngine>(
                            std::move(g), config);
                        engine->initialize();
                        return engine;
                    };
                    auto ea = make_engine();  // delta + sharded (defaults)
                    auto eb = make_engine();  // full + unsharded baseline
                    ServeConfig full_cfg;
                    full_cfg.delta_publication = false;
                    full_cfg.shard_reads = false;
                    QueryService sa(*ea);
                    QueryService sb(*eb, full_cfg);

                    const auto compare = [&] {
                        const auto a = sa.snapshot();
                        const auto b = sb.snapshot();
                        ASSERT_NE(a, nullptr);
                        ASSERT_NE(b, nullptr);
                        ASSERT_EQ(a->version, b->version);
                        EXPECT_EQ(a->rc_step, b->rc_step);
                        EXPECT_EQ(a->quiescent, b->quiescent);
                        EXPECT_EQ(a->frac_unknown, b->frac_unknown);
                        EXPECT_EQ(a->total_reachable, b->total_reachable);
                        EXPECT_EQ(a->changed, b->changed);
                        ASSERT_EQ(a->scores.size(), b->scores.size());
                        for (std::size_t v = 0; v < a->scores.size(); ++v) {
                            ASSERT_EQ(a->scores.closeness(v),
                                      b->scores.closeness(v))
                                << "vertex " << v;
                            ASSERT_EQ(a->scores.reachable(v),
                                      b->scores.reachable(v))
                                << "vertex " << v;
                        }
                        const auto ta = sa.topk(5, FreshnessPolicy::ServeStale);
                        const auto tb = sb.topk(5, FreshnessPolicy::ServeStale);
                        ASSERT_EQ(ta.meta.status, QueryStatus::Ok);
                        ASSERT_EQ(tb.meta.status, QueryStatus::Ok);
                        EXPECT_EQ(ta.entries, tb.entries);
                    };
                    const auto drive = [&](const auto& op) {
                        op(*ea);
                        op(*eb);
                        compare();
                    };

                    drive([](AnytimeEngine& e) { e.run_rc_steps(2); });
                    drive([](AnytimeEngine& e) {  // mid-RC addition
                        GrowthConfig gc;
                        gc.num_new = 6;
                        Rng rng(31);
                        const auto batch =
                            grow_batch(e.num_vertices(), gc, rng);
                        RoundRobinPS strategy;
                        e.apply_addition(batch, strategy);
                    });
                    drive([](AnytimeEngine& e) { e.run_rc_steps(1); });
                    drive([](AnytimeEngine& e) {  // deletion mid-settle
                        const auto& nbs = e.graph().neighbors(0);
                        ASSERT_FALSE(nbs.empty());
                        ShrinkBatch batch;
                        batch.deletions.push_back({0, nbs.front().to, 0.0});
                        e.apply_deletion(batch);
                    });
                    drive([&](AnytimeEngine& e) {  // migration in flight
                        const ShardOwnership& own = e.shard_ownership();
                        const ShardId s = own.shard(0);
                        const RankId from = own.rank_of(s);
                        const RankId to = (from + 1) % ranks;
                        const std::vector<ShardMove> moves{{s, from, to}};
                        e.migrate_shards(moves);
                    });
                    drive([](AnytimeEngine& e) { e.run_to_quiescence(); });
                    // Quiescent republication: the delta is empty and the
                    // streams must still agree bit-for-bit.
                    sa.publish();
                    sb.publish();
                    compare();
                    EXPECT_GT(sa.publication_stats().delta_publications, 0u);
                    EXPECT_EQ(sb.publication_stats().delta_publications, 0u);
                }
            }
        }
    }
}

TEST(Serve, TopkChurnThresholdBoundary) {
    // Pin the ServeConfig::topk_rebuild_churn boundary exactly: churn
    // strictly below the threshold patches, churn at the threshold rebuilds
    // — with bit-identical entries either way.
    const std::size_t n = 10;
    const auto make = [&](std::uint64_t version,
                          const std::vector<Weight>& scores,
                          std::vector<VertexId> changed) {
        ResultSnapshot s;
        s.version = version;
        ClosenessScores plain;
        plain.closeness = scores;
        plain.reachable.assign(n, n);
        s.scores = CowScores::from(plain);
        s.changed = std::move(changed);
        return s;
    };
    std::vector<Weight> scores;
    for (std::size_t v = 0; v < n; ++v) {
        scores.push_back(1.0 - 0.05 * static_cast<Weight>(v));
    }

    IncrementalTopK tracker(3, 0.5);  // rebuild at >= 5 changed of 10
    ResultSnapshot s1 = make(1, scores, {});
    tracker.apply(s1);
    EXPECT_EQ(tracker.rebuilt(), 1u);

    // 4 changed < threshold: patch. The perturbed vertices stay at the
    // bottom of the ranking, so the patch is provably exact.
    for (std::size_t v = 6; v < 10; ++v) {
        scores[v] -= 0.01;
    }
    ResultSnapshot s2 = make(2, scores, {6, 7, 8, 9});
    tracker.apply(s2);
    EXPECT_EQ(tracker.entries(), topk_from_snapshot(s2, 3));
    EXPECT_EQ(tracker.patched(), 1u);
    EXPECT_EQ(tracker.rebuilt(), 1u);

    // 5 changed == threshold: rebuild outright, identical entries.
    for (std::size_t v = 5; v < 10; ++v) {
        scores[v] -= 0.01;
    }
    ResultSnapshot s3 = make(3, scores, {5, 6, 7, 8, 9});
    tracker.apply(s3);
    EXPECT_EQ(tracker.entries(), topk_from_snapshot(s3, 3));
    EXPECT_EQ(tracker.patched(), 1u);
    EXPECT_EQ(tracker.rebuilt(), 2u);
}

TEST(Serve, PublicationStatsDeltaReduction) {
    // Two identical engines, one service publishing deltas and one full
    // rebuilds: the delta stream publishes the same bits while scanning
    // fewer rows and shipping fewer bytes once convergence localizes change.
    const auto make_engine = [] {
        Rng rng(23);
        auto g = barabasi_albert(300, 2, rng);
        auto engine = std::make_unique<AnytimeEngine>(std::move(g),
                                                      serve_config(4));
        engine->initialize();
        return engine;
    };
    auto ea = make_engine();
    auto eb = make_engine();
    ServeConfig full_cfg;
    full_cfg.delta_publication = false;
    full_cfg.shard_reads = false;
    QueryService sa(*ea);
    QueryService sb(*eb, full_cfg);
    ea->run_to_quiescence();
    eb->run_to_quiescence();
    sa.publish();  // quiescent republication: an empty delta
    sb.publish();

    const PublicationStats a = sa.publication_stats();
    const PublicationStats b = sb.publication_stats();
    EXPECT_EQ(a.publications, b.publications);
    EXPECT_GT(a.delta_publications, 0u);
    EXPECT_EQ(b.delta_publications, 0u);
    EXPECT_EQ(b.full_publications, b.publications);
    EXPECT_EQ(a.changed_rows, b.changed_rows);
    EXPECT_LT(a.rows_scanned, b.rows_scanned);
    EXPECT_LT(a.published_bytes, b.published_bytes);
    // Same bits regardless of the cheaper path.
    const auto sna = sa.snapshot();
    const auto snb = sb.snapshot();
    ASSERT_EQ(sna->scores.size(), snb->scores.size());
    for (std::size_t v = 0; v < sna->scores.size(); ++v) {
        ASSERT_EQ(sna->scores.closeness(v), snb->scores.closeness(v));
    }
}

TEST(Serve, TenantAdmissionIsolation) {
    Fixture f(60, 4);
    TenantConfig starved;
    starved.max_pending = 0;
    const TenantId alpha = f.service.register_tenant("alpha", starved);
    TenantConfig roomy;
    roomy.max_pending = 4;
    const TenantId beta = f.service.register_tenant("beta", roomy);

    // Alpha has no waiting capacity: its waiting query sheds at once...
    const auto shed = f.service.point(1, FreshnessPolicy::WaitForNextStep, alpha);
    EXPECT_EQ(shed.meta.status, QueryStatus::Shed);
    // ...without consuming beta's capacity or blocking beta's waiter.
    std::atomic<bool> done{false};
    PointResult got;
    std::thread waiter([&] {
        got = f.service.point(2, FreshnessPolicy::WaitForNextStep, beta);
        done.store(true, std::memory_order_release);
    });
    while (!done.load(std::memory_order_acquire)) {
        f.service.publish();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    waiter.join();
    EXPECT_EQ(got.meta.status, QueryStatus::Ok);

    const auto ca = f.service.tenant_counters(alpha);
    EXPECT_EQ(ca.shed, 1u);
    EXPECT_EQ(ca.served, 0u);
    const auto cb = f.service.tenant_counters(beta);
    EXPECT_EQ(cb.shed, 0u);
    EXPECT_EQ(cb.served, 1u);
    // The default tenant was never involved.
    EXPECT_EQ(f.service.tenant_counters(kDefaultTenant).shed, 0u);
    EXPECT_EQ(f.service.num_tenants(), 3u);
}

TEST(Serve, TenantFreshnessSloAccounting) {
    Fixture f(60, 4);
    TenantConfig strict;
    strict.freshness_slo = 0.0;  // every served response is late
    const TenantId tight = f.service.register_tenant("tight", strict);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const auto r = f.service.point(1, FreshnessPolicy::ServeStale, tight);
    ASSERT_EQ(r.meta.status, QueryStatus::Ok);
    EXPECT_GT(r.meta.staleness_wall, 0.0);
    const auto c = f.service.tenant_counters(tight);
    EXPECT_EQ(c.served, 1u);
    EXPECT_EQ(c.slo_misses, 1u);
    // The default tenant has no SLO: no misses however stale the answer.
    const auto ok = f.service.point(1, FreshnessPolicy::ServeStale);
    ASSERT_EQ(ok.meta.status, QueryStatus::Ok);
    EXPECT_EQ(f.service.tenant_counters(kDefaultTenant).slo_misses, 0u);
}

TEST(Serve, TenantDemandWeightScalesHeat) {
    Fixture f(60, 4);
    TenantConfig heavy;
    heavy.demand_weight = 5.0;
    const TenantId whale = f.service.register_tenant("whale", heavy);
    const double before = f.engine.demand().heat(7);
    const auto base = f.service.point(7, FreshnessPolicy::ServeStale);
    ASSERT_EQ(base.meta.status, QueryStatus::Ok);
    const double after_default = f.engine.demand().heat(7);
    const auto weighted = f.service.point(7, FreshnessPolicy::ServeStale, whale);
    ASSERT_EQ(weighted.meta.status, QueryStatus::Ok);
    const double after_whale = f.engine.demand().heat(7);
    EXPECT_NEAR(after_default - before, 1.0, 1e-6);
    EXPECT_NEAR(after_whale - after_default, 5.0, 1e-6);
}

TEST(Serve, ConcurrentCloseUnblocksWaiters) {
    Fixture f(60, 4);
    PointResult got;
    std::thread waiter([&] {
        got = f.service.point(0, FreshnessPolicy::WaitForQuiescence);
    });
    // Never converge; shut the service down instead.
    f.service.close();
    waiter.join();
    EXPECT_EQ(got.meta.status, QueryStatus::Unavailable);
    // ServeStale keeps working after close.
    const auto stale = f.service.point(0, FreshnessPolicy::ServeStale);
    EXPECT_EQ(stale.meta.status, QueryStatus::Ok);
}

TEST(Serve, ConcurrentShardedReadersServeConsistentMerges) {
    // Readers hammer the sharded read paths — per-shard point planes and the
    // merged top-k — while the driver steps, grows and converges the engine.
    // Every merged top-k must be a strictly ranked prefix from one snapshot,
    // and per-vertex versions must never go backwards.
    Rng rng(17);
    auto g = barabasi_albert(160, 2, rng);
    AnytimeEngine engine(std::move(g), serve_config(8));
    engine.initialize();
    QueryService service(engine);
    ASSERT_TRUE(service.config().shard_reads);

    std::atomic<bool> stop{false};
    std::atomic<std::size_t> served{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t) {
        readers.emplace_back([&, t] {
            const VertexId anchor = static_cast<VertexId>(t * 11);
            std::uint64_t last_version = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                const auto p = service.point(anchor, FreshnessPolicy::ServeStale);
                ASSERT_EQ(p.meta.status, QueryStatus::Ok);
                ASSERT_GE(p.meta.version, last_version);
                last_version = p.meta.version;
                const auto top = service.topk(6, FreshnessPolicy::ServeStale);
                ASSERT_EQ(top.meta.status, QueryStatus::Ok);
                ASSERT_EQ(top.entries.size(), 6u);
                for (std::size_t i = 1; i < top.entries.size(); ++i) {
                    // Strict ranking order implies no duplicates and no
                    // cross-snapshot mixing in the merged result.
                    ASSERT_TRUE(topk_outranks(top.entries[i - 1],
                                              top.entries[i]));
                }
                served.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    engine.run_rc_steps(3);
    GrowthConfig gc;
    gc.num_new = 16;
    Rng brng(19);
    const auto batch = grow_batch(engine.num_vertices(), gc, brng);
    RoundRobinPS strategy;
    engine.apply_addition(batch, strategy);
    engine.run_to_quiescence();

    while (served.load(std::memory_order_relaxed) < 80) {
        std::this_thread::yield();
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto& thread : readers) {
        thread.join();
    }
    EXPECT_TRUE(service.snapshot()->quiescent);
}

TEST(Serve, ConcurrentTenantSheddingKeepsOtherTenantsServed) {
    // A tenant flooding waiting queries far beyond its own budget gets shed;
    // a well-behaved tenant's waiters are all served meanwhile — per-tenant
    // admission keeps the blast radius per tenant, even under contention.
    Fixture f(70, 4);
    TenantConfig tiny;
    tiny.max_pending = 1;
    const TenantId noisy = f.service.register_tenant("noisy", tiny);
    TenantConfig roomy;
    roomy.max_pending = 64;
    const TenantId quiet = f.service.register_tenant("quiet", roomy);

    std::atomic<bool> stop{false};
    std::atomic<std::size_t> flood_exited{0};
    std::vector<std::thread> flood;
    for (int t = 0; t < 4; ++t) {
        flood.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                const auto r =
                    f.service.point(1, FreshnessPolicy::WaitForNextStep, noisy);
                // While the service is open, a flood query is either served
                // or shed — never erroneously unavailable.
                ASSERT_NE(r.meta.status, QueryStatus::Unavailable);
            }
            flood_exited.fetch_add(1, std::memory_order_relaxed);
        });
    }

    std::atomic<std::size_t> quiet_served{0};
    std::thread quiet_reader([&] {
        for (int i = 0; i < 20; ++i) {
            const auto r =
                f.service.point(2, FreshnessPolicy::WaitForNextStep, quiet);
            ASSERT_EQ(r.meta.status, QueryStatus::Ok);
            quiet_served.fetch_add(1, std::memory_order_relaxed);
        }
    });

    while (quiet_served.load(std::memory_order_relaxed) < 20) {
        f.service.publish();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    stop.store(true, std::memory_order_relaxed);
    // Parked flood waiters need one more publication each to wake and exit.
    while (flood_exited.load(std::memory_order_relaxed) < 4) {
        f.service.publish();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    for (auto& thread : flood) {
        thread.join();
    }
    quiet_reader.join();

    EXPECT_EQ(quiet_served.load(), 20u);
    EXPECT_EQ(f.service.tenant_counters(quiet).shed, 0u);
    // Four flooders against a budget of one: shedding must have happened.
    EXPECT_GT(f.service.tenant_counters(noisy).shed, 0u);
}

}  // namespace
}  // namespace aa
