// Static-graph correctness: after DD + IA + RC-to-quiescence, the distributed
// distance vectors must equal the exact APSP, for a range of topologies,
// rank counts and schedules.
#include <gtest/gtest.h>

#include "core/closeness.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"

namespace aa {
namespace {

EngineConfig small_config(std::uint32_t ranks) {
    EngineConfig config;
    config.num_ranks = ranks;
    config.ia_threads = 1;
    config.seed = 7;
    return config;
}

void expect_matrix_exact(const AnytimeEngine& engine, const DynamicGraph& g) {
    const auto approx = engine.full_distance_matrix();
    const auto exact = exact_apsp(g);
    ASSERT_EQ(approx.size(), exact.size());
    for (std::size_t v = 0; v < exact.size(); ++v) {
        for (std::size_t t = 0; t < exact.size(); ++t) {
            if (exact[v][t] < kInfinity) {
                EXPECT_NEAR(approx[v][t], exact[v][t], 1e-9)
                    << "d(" << v << "," << t << ")";
            } else {
                EXPECT_GE(approx[v][t], kInfinity);
            }
        }
    }
}

TEST(EngineStatic, PathGraphTwoRanks) {
    DynamicGraph g(6);
    for (VertexId v = 0; v + 1 < 6; ++v) {
        g.add_edge(v, v + 1, 1.0);
    }
    AnytimeEngine engine(g, small_config(2));
    engine.initialize();
    engine.run_to_quiescence();
    EXPECT_TRUE(engine.quiescent());
    expect_matrix_exact(engine, g);
}

TEST(EngineStatic, SingleRankIsExactAfterIa) {
    Rng rng(3);
    const auto g = barabasi_albert(40, 2, rng);
    AnytimeEngine engine(g, small_config(1));
    engine.initialize();
    // One rank: IA alone is the whole computation.
    engine.run_to_quiescence();
    expect_matrix_exact(engine, g);
}

TEST(EngineStatic, ScaleFreeGraphSixteenRanks) {
    Rng rng(11);
    const auto g = barabasi_albert(120, 2, rng);
    AnytimeEngine engine(g, small_config(16));
    engine.initialize();
    const std::size_t steps = engine.run_to_quiescence();
    EXPECT_GE(steps, 1u);
    expect_matrix_exact(engine, g);
}

TEST(EngineStatic, WeightedGraph) {
    Rng rng(5);
    const auto g = erdos_renyi_gnm(60, 150, rng, WeightRange{1.0, 10.0});
    AnytimeEngine engine(g, small_config(4));
    engine.initialize();
    engine.run_to_quiescence();
    expect_matrix_exact(engine, g);
}

TEST(EngineStatic, DisconnectedGraphKeepsInfinities) {
    DynamicGraph g(8);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(4, 5);
    g.add_edge(5, 6);  // vertices 3 and 7 isolated
    AnytimeEngine engine(g, small_config(3));
    engine.initialize();
    engine.run_to_quiescence();
    expect_matrix_exact(engine, g);
}

TEST(EngineStatic, ClosenessMatchesExact) {
    Rng rng(13);
    const auto g = barabasi_albert(80, 3, rng);
    AnytimeEngine engine(g, small_config(8));
    engine.initialize();
    engine.run_to_quiescence();
    const auto approx = engine.closeness();
    const auto exact = exact_closeness(g);
    for (std::size_t v = 0; v < g.num_vertices(); ++v) {
        EXPECT_NEAR(approx.closeness[v], exact.closeness[v], 1e-9);
    }
}

TEST(EngineStatic, SimTimeAdvancesAndStatsAccumulate) {
    Rng rng(17);
    const auto g = barabasi_albert(60, 2, rng);
    AnytimeEngine engine(g, small_config(4));
    engine.initialize();
    const double after_init = engine.sim_seconds();
    EXPECT_GT(after_init, 0.0);
    engine.run_to_quiescence();
    EXPECT_GT(engine.sim_seconds(), after_init);
    EXPECT_GT(engine.cluster().stats().total_messages, 0u);
    EXPECT_GT(engine.report().ia_ops, 0.0);
    EXPECT_GT(engine.report().rc_ops, 0.0);
}

TEST(EngineStatic, RcStepOnQuiescentSystemIsNoop) {
    DynamicGraph g(4);
    g.add_edge(0, 1);
    g.add_edge(2, 3);
    AnytimeEngine engine(g, small_config(2));
    engine.initialize();
    engine.run_to_quiescence();
    const double t = engine.sim_seconds();
    EXPECT_FALSE(engine.rc_step());
    EXPECT_EQ(engine.sim_seconds(), t);
}

TEST(EngineStatic, StaticConvergenceBoundedByRankCount) {
    // For static graphs the paper bounds RC steps by P - 1 (longest processor
    // chain); our worklist variant converges within a small multiple of that.
    Rng rng(19);
    const auto g = barabasi_albert(100, 2, rng);
    for (const std::uint32_t ranks : {2u, 4u, 8u}) {
        AnytimeEngine engine(g, small_config(ranks));
        engine.initialize();
        const std::size_t steps = engine.run_to_quiescence();
        EXPECT_LE(steps, static_cast<std::size_t>(2 * ranks + 2))
            << "ranks=" << ranks;
    }
}

}  // namespace
}  // namespace aa
