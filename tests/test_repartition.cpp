// Repartition-S specifics: row migration, ownership rebuild, partial-result
// reuse, and interaction with in-progress analysis.
#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "core/engine.hpp"
#include "core/strategies.hpp"
#include "graph/generators.hpp"

namespace aa {
namespace {

EngineConfig config_with(std::uint32_t ranks) {
    EngineConfig config;
    config.num_ranks = ranks;
    config.ia_threads = 1;
    config.seed = 31;
    return config;
}

GrowthBatch make_batch(const DynamicGraph& host, std::size_t count,
                       std::uint64_t seed) {
    GrowthConfig gc;
    gc.num_new = count;
    gc.communities = 2;
    gc.intra_edges = 2;
    gc.host_edges = 2;
    Rng rng(seed);
    return grow_batch(host.num_vertices(), gc, rng);
}

TEST(Repartition, OwnershipIsRebuiltConsistently) {
    Rng rng(1);
    const auto host = barabasi_albert(60, 2, rng);
    AnytimeEngine engine(host, config_with(4));
    engine.initialize();
    engine.run_to_quiescence();

    const auto batch = make_batch(host, 20, 7);
    engine.repartition_add(batch);
    const auto& owners = engine.owners();
    ASSERT_EQ(owners.size(), 80u);
    std::vector<std::size_t> counts(4, 0);
    for (const RankId r : owners) {
        ASSERT_LT(r, 4u);
        ++counts[r];
    }
    for (const std::size_t c : counts) {
        EXPECT_GT(c, 10u);  // balanced multilevel repartition
    }
}

TEST(Repartition, MigrationSendsBytes) {
    Rng rng(2);
    const auto host = barabasi_albert(80, 2, rng);
    AnytimeEngine engine(host, config_with(4));
    engine.initialize();
    engine.run_to_quiescence();
    const auto messages_before = engine.cluster().stats().total_messages;

    const auto batch = make_batch(host, 30, 9);
    engine.repartition_add(batch);
    // Row migration produces messages even before RC resumes.
    EXPECT_GT(engine.cluster().stats().total_messages, messages_before);
}

TEST(Repartition, ReusesPartialResults) {
    // After a converged run, repartitioning must preserve already-exact
    // distances among old vertices (they are upper bounds that were tight).
    Rng rng(3);
    const auto host = barabasi_albert(50, 2, rng);
    AnytimeEngine engine(host, config_with(3));
    engine.initialize();
    engine.run_to_quiescence();
    const auto exact_host = exact_apsp(host);

    const auto batch = make_batch(host, 15, 11);
    engine.repartition_add(batch);
    // Immediately after the structural change (before RC convergence), old
    // pair distances are still at most their host-graph values.
    const auto matrix = engine.full_distance_matrix();
    for (VertexId u = 0; u < 50; ++u) {
        for (VertexId t = 0; t < 50; ++t) {
            if (exact_host[u][t] < kInfinity) {
                EXPECT_LE(matrix[u][t], exact_host[u][t] + 1e-9);
            }
        }
    }
}

TEST(Repartition, ConvergesFromPartialState) {
    Rng rng(4);
    const auto host = barabasi_albert(70, 2, rng);
    AnytimeEngine engine(host, config_with(4));
    engine.initialize();
    engine.run_rc_steps(1);  // deliberately unconverged

    const auto batch = make_batch(host, 25, 13);
    RepartitionS strategy;
    engine.apply_addition(batch, strategy);
    engine.run_to_quiescence();

    const auto grown = apply_batch(host, batch);
    const auto exact = exact_apsp(grown);
    const auto matrix = engine.full_distance_matrix();
    for (std::size_t v = 0; v < exact.size(); ++v) {
        for (std::size_t t = 0; t < exact.size(); ++t) {
            if (exact[v][t] < kInfinity) {
                ASSERT_NEAR(matrix[v][t], exact[v][t], 1e-9);
            }
        }
    }
}

TEST(Repartition, BackToBackRepartitions) {
    Rng rng(5);
    const auto host = barabasi_albert(50, 2, rng);
    AnytimeEngine engine(host, config_with(3));
    engine.initialize();
    engine.run_to_quiescence();

    DynamicGraph expected = host;
    RepartitionS strategy;
    for (int i = 0; i < 2; ++i) {
        const auto batch = make_batch(expected, 12, 50 + i);
        engine.apply_addition(batch, strategy);
        expected = apply_batch(expected, batch);
    }
    engine.run_to_quiescence();
    const auto exact = exact_apsp(expected);
    const auto matrix = engine.full_distance_matrix();
    for (std::size_t v = 0; v < exact.size(); ++v) {
        for (std::size_t t = 0; t < exact.size(); ++t) {
            if (exact[v][t] < kInfinity) {
                ASSERT_NEAR(matrix[v][t], exact[v][t], 1e-9);
            }
        }
    }
}

TEST(Repartition, CutEdgesNotWorseThanRoundRobinForBigBatches) {
    // Repartitioning the whole grown graph should yield a cut no worse than
    // bolting a large batch on via round-robin.
    Rng rng(6);
    const auto host = barabasi_albert(100, 2, rng);
    const auto batch = make_batch(host, 80, 15);

    AnytimeEngine rr_engine(host, config_with(4));
    rr_engine.initialize();
    rr_engine.run_to_quiescence();
    RoundRobinPS rr;
    rr_engine.apply_addition(batch, rr);

    AnytimeEngine rp_engine(host, config_with(4));
    rp_engine.initialize();
    rp_engine.run_to_quiescence();
    RepartitionS rp;
    rp_engine.apply_addition(batch, rp);

    EXPECT_LT(rp_engine.current_cut_edges(), rr_engine.current_cut_edges());
}

}  // namespace
}  // namespace aa
