// Logical-shard ownership and migration-planner unit tests: the two-level
// vertex -> shard -> rank map must resolve exactly like the flat map it
// replaced (for any granularity), extend deterministically, and the
// telemetry-driven planner must emit bounded, deterministic, never-draining
// move lists. Plus the satellite pieces that ride on the shard layer: the
// demand-proportional refine-budget split, the shard-aware partition quality
// telemetry, and the shard-decomposed serve-layer top-k.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "partition/partition.hpp"
#include "refine/planner.hpp"
#include "serve/snapshot.hpp"
#include "serve/topk.hpp"
#include "shard/migration.hpp"
#include "shard/ownership.hpp"

namespace aa {
namespace {

std::vector<RankId> random_assignment(std::size_t n, std::uint32_t ranks,
                                      std::uint64_t seed) {
    Rng rng(seed);
    std::vector<RankId> owners(n);
    for (auto& r : owners) {
        r = static_cast<RankId>(rng.uniform(ranks));
    }
    return owners;
}

TEST(ShardOwnership, ResolvesFlatMapForAnyGranularity) {
    const auto owners = random_assignment(97, 5, 11);
    for (const std::uint32_t spr : {1u, 2u, 3u, 8u, 16u}) {
        const auto ownership = ShardOwnership::from_partition(owners, 5, spr);
        EXPECT_EQ(ownership.num_shards(), 5u * spr);
        for (VertexId v = 0; v < owners.size(); ++v) {
            ASSERT_EQ(ownership.owner(v), owners[v]) << "spr=" << spr;
            ASSERT_TRUE(ownership.owned_by(v, owners[v]));
            // The shard lies in the owner's contiguous range.
            const ShardId s = ownership.shard(v);
            ASSERT_GE(s, owners[v] * spr);
            ASSERT_LT(s, (owners[v] + 1) * spr);
        }
        EXPECT_EQ(ownership.owners(), owners);
    }
}

TEST(ShardOwnership, RoundRobinBalancesShardsWithinEachRank) {
    const auto owners = random_assignment(120, 4, 17);
    const auto ownership = ShardOwnership::from_partition(owners, 4, 8);
    const auto sizes = ownership.shard_sizes();
    ASSERT_EQ(sizes.size(), 32u);
    for (RankId r = 0; r < 4; ++r) {
        std::size_t lo = SIZE_MAX;
        std::size_t hi = 0;
        for (std::uint32_t j = 0; j < 8; ++j) {
            lo = std::min(lo, sizes[r * 8 + j]);
            hi = std::max(hi, sizes[r * 8 + j]);
        }
        EXPECT_LE(hi - lo, 1u) << "rank " << r;
    }
}

TEST(ShardOwnership, RepointReRoutesExactlyTheShardsVertices) {
    const auto owners = random_assignment(64, 3, 23);
    auto ownership = ShardOwnership::from_partition(owners, 3, 4);
    const ShardId moved = 5;  // rank 1's second shard
    const auto members = ownership.shard_vertices(moved);
    ASSERT_FALSE(members.empty());
    ownership.set_shard_rank(moved, 2);
    for (VertexId v = 0; v < owners.size(); ++v) {
        const bool in_shard =
            std::find(members.begin(), members.end(), v) != members.end();
        EXPECT_EQ(ownership.owner(v), in_shard ? RankId{2} : owners[v]);
    }
}

TEST(ShardOwnership, ExtendIsDeterministicAcrossReplicas) {
    const auto owners = random_assignment(40, 4, 29);
    auto replica_a = ShardOwnership::from_partition(owners, 4, 4);
    auto replica_b = replica_a;
    const auto batch = random_assignment(25, 4, 31);
    replica_a.extend(batch);
    replica_b.extend(batch);
    EXPECT_EQ(replica_a, replica_b);
    ASSERT_EQ(replica_a.num_vertices(), 65u);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(replica_a.owner(static_cast<VertexId>(40 + i)), batch[i]);
    }
}

TEST(ShardOwnership, NewVertexGetsFreshShardWhenRankWasDrained) {
    // Repoint all of rank 0's shards away, then register a vertex owned by
    // rank 0: a fresh shard must be appended for it.
    auto ownership =
        ShardOwnership::from_partition(std::vector<RankId>{0, 0, 1, 1}, 2, 2);
    ownership.set_shard_rank(0, 1);
    ownership.set_shard_rank(1, 1);
    const std::size_t shards_before = ownership.num_shards();
    ownership.extend(std::vector<RankId>{0});
    EXPECT_EQ(ownership.num_shards(), shards_before + 1);
    EXPECT_EQ(ownership.owner(4), 0u);
}

TEST(MigrationPlanner, QuietUnderThreshold) {
    const auto owners = random_assignment(80, 4, 37);
    const auto ownership = ShardOwnership::from_partition(owners, 4, 4);
    const std::vector<double> weights(ownership.num_shards(), 1.0);
    MigrationPlanner planner;
    planner.observe(std::vector<double>{100.0, 101.0, 99.0, 100.0});
    EXPECT_NEAR(planner.imbalance(), 101.0 / 100.0, 1e-9);
    EXPECT_TRUE(planner.plan(ownership, weights, 4, 1.25).empty());
}

TEST(MigrationPlanner, MovesHotRanksShardToColdestDeterministically) {
    const auto owners = random_assignment(80, 4, 41);
    const auto ownership = ShardOwnership::from_partition(owners, 4, 4);
    std::vector<double> weights(ownership.num_shards(), 1.0);
    MigrationPlanner planner;
    planner.observe(std::vector<double>{400.0, 10.0, 10.0, 10.0});
    const auto plan = planner.plan(ownership, weights, 1, 1.25);
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].from, 0u);
    EXPECT_EQ(plan[0].to, 1u);  // coldest, ties to the lowest rank id
    ASSERT_LT(plan[0].shard, 4u);
    // Planning is pure: same inputs, same plan.
    EXPECT_EQ(planner.plan(ownership, weights, 1, 1.25), plan);
    // The bound is honored.
    EXPECT_LE(planner.plan(ownership, weights, 3, 1.25).size(), 3u);
}

TEST(MigrationPlanner, NeverDrainsARanksLastPopulatedShard) {
    // Rank 0 is scorching but owns a single populated shard: no plan.
    auto ownership =
        ShardOwnership::from_partition(std::vector<RankId>{0, 0, 1, 1}, 2, 1);
    const std::vector<double> weights{10.0, 10.0};
    MigrationPlanner planner;
    planner.observe(std::vector<double>{1000.0, 1.0});
    EXPECT_TRUE(planner.plan(ownership, weights, 4, 1.25).empty());
}

TEST(MigrationPlanner, EwmaSmoothsAndResetForgets) {
    MigrationPlanner planner(0.5);
    planner.observe(std::vector<double>{100.0, 0.0});
    planner.observe(std::vector<double>{0.0, 100.0});
    ASSERT_EQ(planner.rank_load().size(), 2u);
    EXPECT_DOUBLE_EQ(planner.rank_load()[0], 50.0);
    EXPECT_DOUBLE_EQ(planner.rank_load()[1], 50.0);
    EXPECT_EQ(planner.observations(), 2u);
    planner.reset();
    EXPECT_TRUE(planner.rank_load().empty());
    EXPECT_DOUBLE_EQ(planner.imbalance(), 1.0);
}

TEST(RefineBudgetSplit, NamesRoundTripAndRejectUnknown) {
    for (const RefineBudgetSplit split :
         {RefineBudgetSplit::Static, RefineBudgetSplit::DemandProportional}) {
        RefineBudgetSplit parsed{};
        ASSERT_TRUE(
            parse_refine_budget_split(refine_budget_split_name(split), parsed));
        EXPECT_EQ(parsed, split);
    }
    RefineBudgetSplit parsed = RefineBudgetSplit::Static;
    EXPECT_FALSE(parse_refine_budget_split("Demand", parsed));
    EXPECT_FALSE(parse_refine_budget_split("", parsed));
}

TEST(RefineBudgetSplit, StaticAndUniformHeatReproducePerRankBudgetExactly) {
    // Two ranks, equal vertex counts.
    const std::vector<RankId> owners{0, 0, 1, 1};
    const auto ownership = ShardOwnership::from_partition(owners, 2, 2);
    const std::vector<double> skewed{10.0, 0.0, 0.0, 0.0};
    // Static split ignores heat entirely.
    EXPECT_EQ(plan_rank_budgets(50.0, ownership, 2, skewed,
                                RefineBudgetSplit::Static),
              (std::vector<double>{50.0, 50.0}));
    // Demand split under *uniform* heat and equal ownership is bit-identical
    // to static: total * (0.5/P + 0.5/P) == per-rank budget.
    const std::vector<double> uniform(4, 3.0);
    EXPECT_EQ(plan_rank_budgets(50.0, ownership, 2, uniform,
                                RefineBudgetSplit::DemandProportional),
              (std::vector<double>{50.0, 50.0}));
    // Zero budget is the unbounded sentinel and must pass through untouched.
    EXPECT_EQ(plan_rank_budgets(0.0, ownership, 2, skewed,
                                RefineBudgetSplit::DemandProportional),
              (std::vector<double>{0.0, 0.0}));
}

TEST(RefineBudgetSplit, DemandSplitConservesTotalAndFavorsHotRank) {
    const std::vector<RankId> owners{0, 0, 1, 1};
    const auto ownership = ShardOwnership::from_partition(owners, 2, 2);
    const std::vector<double> heat{9.0, 9.0, 1.0, 1.0};
    const auto budgets = plan_rank_budgets(
        100.0, ownership, 2, heat, RefineBudgetSplit::DemandProportional);
    ASSERT_EQ(budgets.size(), 2u);
    EXPECT_GT(budgets[0], budgets[1]);
    EXPECT_GT(budgets[1], 0.0);  // the uniform floor keeps every rank moving
    EXPECT_NEAR(budgets[0] + budgets[1], 200.0, 1e-9);
}

TEST(PartitionQuality, ShardLoadsAndCutsAggregateToRankMetrics) {
    Rng rng(7);
    const auto g = barabasi_albert(60, 2, rng);
    const auto owners = random_assignment(60, 3, 43);
    const auto ownership = ShardOwnership::from_partition(owners, 3, 4);

    Partitioning flat;
    flat.assignment = owners;
    flat.num_parts = 3;
    const PartitionQuality rank_q = evaluate_partition(g, flat);
    EXPECT_TRUE(rank_q.shard_loads.empty());  // flat overload: no shard view

    const PartitionQuality q = evaluate_partition(g, ownership, 3);
    EXPECT_EQ(q.cut_edges, rank_q.cut_edges);
    EXPECT_EQ(q.part_sizes, rank_q.part_sizes);
    EXPECT_EQ(q.part_cut_edges, rank_q.part_cut_edges);
    ASSERT_EQ(q.shard_loads.size(), ownership.num_shards());
    ASSERT_EQ(q.shard_cut_edges.size(), ownership.num_shards());
    // Per-shard cut telemetry refines the per-rank communication volume.
    for (RankId r = 0; r < 3; ++r) {
        std::size_t rank_cut = 0;
        for (std::uint32_t j = 0; j < 4; ++j) {
            rank_cut += q.shard_cut_edges[r * 4 + j];
        }
        EXPECT_EQ(rank_cut, q.part_cut_edges[r]) << "rank " << r;
    }
    // Load = vertices + incident edge endpoints, summed over all shards.
    const double total =
        std::accumulate(q.shard_loads.begin(), q.shard_loads.end(), 0.0);
    EXPECT_DOUBLE_EQ(total, static_cast<double>(g.num_vertices()) +
                                2.0 * static_cast<double>(g.num_edges()));
}

TEST(ShardTopK, ShardedSelectionMatchesFullSelectionBitIdentically) {
    Rng rng(19);
    const auto g = barabasi_albert(70, 2, rng);
    EngineConfig config;
    config.num_ranks = 4;
    config.seed = 91;
    AnytimeEngine engine(g, config);
    engine.initialize();
    engine.run_to_quiescence();
    const auto snapshot = build_snapshot(engine, 1, nullptr);
    for (const std::size_t k : {std::size_t{1}, std::size_t{5},
                                std::size_t{32}, std::size_t{500}}) {
        EXPECT_EQ(topk_sharded(*snapshot, engine.shard_ownership(), k),
                  topk_from_snapshot(*snapshot, k))
            << "k=" << k;
    }
}

}  // namespace
}  // namespace aa
