// Property-based sweep: for randomized graphs, partitions, injection points,
// batch shapes and strategies, the converged engine must always equal the
// exact APSP of the final graph. This is the library's strongest guarantee,
// exercised across the whole configuration lattice with parameterized gtest.
#include <gtest/gtest.h>

#include <tuple>

#include "core/baseline.hpp"
#include "core/engine.hpp"
#include "core/strategies.hpp"
#include "graph/generators.hpp"

namespace aa {
namespace {

enum class Family { Ba, Er, Ws, Community };
enum class StrategyKind { RoundRobin, CutEdge, Repartition };

const char* family_name(Family f) {
    switch (f) {
        case Family::Ba: return "ba";
        case Family::Er: return "er";
        case Family::Ws: return "ws";
        case Family::Community: return "comm";
    }
    return "?";
}
const char* strategy_name(StrategyKind s) {
    switch (s) {
        case StrategyKind::RoundRobin: return "rr";
        case StrategyKind::CutEdge: return "ce";
        case StrategyKind::Repartition: return "rp";
    }
    return "?";
}

DynamicGraph make_graph(Family family, std::size_t n, Rng& rng) {
    switch (family) {
        case Family::Ba:
            return barabasi_albert(n, 2, rng, WeightRange{1.0, 3.0});
        case Family::Er:
            return erdos_renyi_gnm(n, 3 * n, rng, WeightRange{1.0, 3.0});
        case Family::Ws:
            return watts_strogatz(n, 3, 0.2, rng);
        case Family::Community:
            return planted_partition(n, 4, 0.2, 0.01, rng);
    }
    return DynamicGraph{};
}

std::unique_ptr<VertexAdditionStrategy> make_strategy(StrategyKind kind,
                                                      std::uint64_t seed) {
    switch (kind) {
        case StrategyKind::RoundRobin:
            return std::make_unique<RoundRobinPS>();
        case StrategyKind::CutEdge:
            return std::make_unique<CutEdgePS>(seed, 3);
        case StrategyKind::Repartition:
            return std::make_unique<RepartitionS>();
    }
    return nullptr;
}

using Param = std::tuple<Family, StrategyKind, std::uint32_t /*ranks*/,
                         std::size_t /*inject step*/, IaKernel>;

class DynamicExactness : public ::testing::TestWithParam<Param> {};

TEST_P(DynamicExactness, ConvergesToExactApsp) {
    const auto [family, kind, ranks, inject_step, kernel] = GetParam();
    const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(family) * 131 +
                               static_cast<std::uint64_t>(kind) * 17 + ranks * 3 +
                               inject_step;

    Rng graph_rng(seed);
    DynamicGraph g = make_graph(family, 64, graph_rng);

    EngineConfig config;
    config.num_ranks = ranks;
    config.ia_threads = 1;
    config.ia_kernel = kernel;
    config.seed = seed ^ 0xABCD;
    AnytimeEngine engine(g, config);
    engine.initialize();
    engine.run_rc_steps(inject_step);

    // Two random batches back to back.
    DynamicGraph expected = g;
    auto strategy = make_strategy(kind, seed);
    for (int b = 0; b < 2; ++b) {
        GrowthConfig gc;
        gc.num_new = 6 + (seed + b) % 10;
        gc.communities = 1 + (seed + b) % 3;
        gc.intra_edges = 1 + b;
        gc.host_edges = 1 + (seed % 2);
        Rng batch_rng(seed * 7 + b);
        const auto batch = grow_batch(expected.num_vertices(), gc, batch_rng);
        engine.apply_addition(batch, *strategy);
        engine.run_rc_steps(b);  // vary interleaving
        expected = apply_batch(expected, batch);
    }
    engine.run_to_quiescence();
    ASSERT_TRUE(engine.quiescent());

    const auto exact = exact_apsp(expected);
    const auto matrix = engine.full_distance_matrix();
    for (std::size_t v = 0; v < exact.size(); ++v) {
        for (std::size_t t = 0; t < exact.size(); ++t) {
            if (exact[v][t] < kInfinity) {
                ASSERT_NEAR(matrix[v][t], exact[v][t], 1e-9)
                    << "d(" << v << "," << t << ")";
            } else {
                ASSERT_GE(matrix[v][t], kInfinity);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Lattice, DynamicExactness,
    ::testing::Combine(::testing::Values(Family::Ba, Family::Er, Family::Ws,
                                         Family::Community),
                       ::testing::Values(StrategyKind::RoundRobin,
                                         StrategyKind::CutEdge,
                                         StrategyKind::Repartition),
                       ::testing::Values(2u, 5u, 8u),
                       ::testing::Values(0u, 3u),
                       ::testing::Values(IaKernel::Dijkstra,
                                         IaKernel::DeltaStepping)),
    [](const ::testing::TestParamInfo<Param>& info) {
        return std::string(family_name(std::get<0>(info.param))) + "_" +
               strategy_name(std::get<1>(info.param)) + "_r" +
               std::to_string(std::get<2>(info.param)) + "_i" +
               std::to_string(std::get<3>(info.param)) +
               (std::get<4>(info.param) == IaKernel::DeltaStepping ? "_ds"
                                                                   : "_dij");
    });

// Random mixed-strategy soak: one longer scenario with interleaved batches,
// strategies and convergence levels.
TEST(DynamicExactness, MixedStrategySoak) {
    Rng scenario_rng(2024);
    DynamicGraph expected = barabasi_albert(50, 2, scenario_rng);

    EngineConfig config;
    config.num_ranks = 4;
    config.ia_threads = 1;
    config.seed = 99;
    AnytimeEngine engine(expected, config);
    engine.initialize();

    RoundRobinPS rr;
    CutEdgePS ce(5);
    RepartitionS rp;
    VertexAdditionStrategy* strategies[] = {&rr, &ce, &rp};

    for (int round = 0; round < 6; ++round) {
        GrowthConfig gc;
        gc.num_new = 3 + scenario_rng.uniform(8);
        gc.communities = 1 + scenario_rng.uniform(3);
        gc.intra_edges = scenario_rng.uniform(3);
        gc.host_edges = 1 + scenario_rng.uniform(2);
        Rng batch_rng = scenario_rng.fork();
        const auto batch = grow_batch(expected.num_vertices(), gc, batch_rng);
        engine.apply_addition(batch, *strategies[round % 3]);
        engine.run_rc_steps(scenario_rng.uniform(3));
        expected = apply_batch(expected, batch);

        // Interleave the prior-work updates: a few edge additions between
        // existing vertices and an edge-weight decrease.
        std::vector<Edge> extra;
        while (extra.size() < 2 + scenario_rng.uniform(3)) {
            const auto u =
                static_cast<VertexId>(scenario_rng.uniform(expected.num_vertices()));
            const auto v =
                static_cast<VertexId>(scenario_rng.uniform(expected.num_vertices()));
            const Weight w = 1.0 + scenario_rng.uniform01();
            if (u != v && expected.add_edge(u, v, w)) {
                extra.push_back({u, v, w});
            }
        }
        engine.add_edges(extra);
        const auto edges = expected.edges();
        const Edge& shrink = edges[scenario_rng.uniform(edges.size())];
        const Weight lowered = expected.edge_weight(shrink.u, shrink.v) * 0.7;
        expected.set_edge_weight(shrink.u, shrink.v, lowered);
        ASSERT_TRUE(engine.decrease_edge_weight(shrink.u, shrink.v, lowered));
    }
    engine.run_to_quiescence();

    const auto exact = exact_apsp(expected);
    const auto matrix = engine.full_distance_matrix();
    for (std::size_t v = 0; v < exact.size(); ++v) {
        for (std::size_t t = 0; t < exact.size(); ++t) {
            if (exact[v][t] < kInfinity) {
                ASSERT_NEAR(matrix[v][t], exact[v][t], 1e-9);
            }
        }
    }
}

}  // namespace
}  // namespace aa
