// Ablation G (extension): the anytime property of the second measure.
// Pivot-sampled betweenness refines from a rough estimate to exact as pivots
// are processed; this harness tracks estimate quality (rank correlation of
// the top decile and mean relative error on it) against simulated time —
// the "interrupt whenever the answer is good enough" curve.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/metrics.hpp"
#include "harness.hpp"
#include "measures/betweenness.hpp"

namespace {

using namespace aa;

/// Fraction of the exact top-k that appears in the estimate's top-k.
double top_overlap(const std::vector<double>& estimate,
                   const std::vector<double>& exact, std::size_t k) {
    const auto top_of = [k](const std::vector<double>& scores) {
        std::vector<std::size_t> order(scores.size());
        for (std::size_t i = 0; i < order.size(); ++i) {
            order[i] = i;
        }
        std::partial_sort(order.begin(), order.begin() + k, order.end(),
                          [&](std::size_t a, std::size_t b) {
                              return scores[a] > scores[b];
                          });
        order.resize(k);
        std::sort(order.begin(), order.end());
        return order;
    };
    const auto a = top_of(estimate);
    const auto b = top_of(exact);
    std::vector<std::size_t> common;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(common));
    return static_cast<double>(common.size()) / static_cast<double>(k);
}

}  // namespace

int main(int argc, char** argv) {
    using namespace aa::bench;

    Options options = parse_options(
        argc, argv, "ablation: anytime quality of sampled betweenness");
    options.vertices = std::min<std::size_t>(options.vertices, 600);

    const DynamicGraph host = make_host_graph(options);
    const auto exact = exact_betweenness(host);
    const std::size_t k = std::max<std::size_t>(host.num_vertices() / 10, 5);

    std::printf("Ablation G: anytime betweenness on a %zu-vertex graph, %u ranks "
                "(top-%zu overlap vs exact)\n\n",
                host.num_vertices(), options.ranks, k);

    BetweennessEngine engine(host, engine_config(options));
    engine.initialize();

    // BetweennessEngine has no built-in registry; record one refine-phase
    // span per batch of pivots on the simulated clock so the JSON report
    // still carries the anytime timeline.
    JsonReport report = make_report("ablate_betweenness_anytime", options);
    MetricsRegistry registry;
    if (report.wanted()) {
        registry.enable();
    }

    Table table({"pivots", "sim_s", "top_decile_overlap"});
    const std::size_t step = std::max<std::size_t>(host.num_vertices() / 8, 1);
    std::int64_t refine_round = 0;
    while (!engine.exact()) {
        const double t0 = engine.sim_seconds();
        engine.refine(step);
        const auto estimate = engine.scores();
        const double overlap = top_overlap(estimate, exact, k);
        const auto h = registry.span_open("bw.refine", -1, ++refine_round, t0);
        registry.span_attr(h, "pivots", std::to_string(engine.pivots_processed()));
        registry.span_attr(h, "top_decile_overlap", fmt_double(overlap, 3));
        registry.span_close(h, engine.sim_seconds());
        table.add_row({std::to_string(engine.pivots_processed()),
                       fmt_seconds(engine.sim_seconds()),
                       fmt_double(overlap, 3)});
    }
    table.print();
    table.write_csv(options.csv);
    report.set_table(table);
    report.add_raw("metrics", metrics_to_json(registry, 2));
    report.write();
    return 0;
}
