#include "harness.hpp"

#include <algorithm>

#include "common/metrics.hpp"
#include "core/telemetry.hpp"
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

namespace aa::bench {

Options parse_options(int argc, char** argv, const std::string& description) {
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto need_value = [&](const char* flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << flag << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--vertices") {
            options.vertices = std::stoul(need_value("--vertices"));
        } else if (arg == "--ranks") {
            options.ranks = static_cast<std::uint32_t>(std::stoul(need_value("--ranks")));
        } else if (arg == "--threads") {
            options.threads = std::stoul(need_value("--threads"));
        } else if (arg == "--seed") {
            options.seed = std::stoull(need_value("--seed"));
        } else if (arg == "--scale") {
            options.scale = std::stod(need_value("--scale"));
        } else if (arg == "--csv") {
            options.csv = need_value("--csv");
        } else if (arg == "--json") {
            options.json = need_value("--json");
        } else if (arg == "--help" || arg == "-h") {
            std::cout << description << "\n\n"
                      << "flags:\n"
                      << "  --vertices N   host graph size (default 1200; paper: 50000)\n"
                      << "  --ranks P      simulated processors (default 16)\n"
                      << "  --threads T    IA threads per rank (default 4)\n"
                      << "  --seed S       RNG seed (default 42)\n"
                      << "  --scale F      scale vertices and batches by F\n"
                      << "  --csv PATH     also append rows to a CSV file\n"
                      << "  --json PATH    write a JSON report with per-step, "
                         "per-rank timelines\n";
            std::exit(0);
        } else {
            std::cerr << "unknown flag: " << arg << " (try --help)\n";
            std::exit(2);
        }
    }
    return options;
}

EngineConfig engine_config(const Options& options) {
    EngineConfig config;
    config.num_ranks = options.ranks;
    config.ia_threads = options.threads;
    config.seed = options.seed;
    // Scaled model: the paper runs at n = 50,000 where per-message payloads
    // are hundreds of kilobytes and the fixed LogP latency is negligible.
    // At a scaled-down n the payload (bandwidth) terms shrink like n^2 but a
    // fixed latency would not, so the cost balance would be distorted toward
    // latency. Shrinking latency/overhead proportionally with n preserves
    // the paper's compute/bandwidth/latency balance at reduced scale (see
    // EXPERIMENTS.md "Scaling methodology").
    const double shrink =
        std::min(1.0, static_cast<double>(options.scaled_vertices()) / 50000.0);
    config.logp.latency *= shrink;
    config.logp.overhead *= shrink;
    // A JSON report wants the full phase timeline; without one the registry
    // stays disabled (one dead branch per phase).
    config.enable_metrics = !options.json.empty();
    return config;
}

DynamicGraph make_host_graph(const Options& options) {
    Rng rng(options.seed);
    return barabasi_albert(options.scaled_vertices(), 3, rng);
}

GrowthBatch make_batch(std::size_t host_vertices, std::size_t count,
                       std::uint64_t seed) {
    GrowthConfig config;
    config.num_new = count;
    // Batch community count grows slowly with the batch, matching the
    // multi-community batches the paper extracts via Louvain.
    config.communities = std::clamp<std::size_t>(count / 24, 2, 8);
    config.intra_edges = 3;
    config.host_edges = 2;
    config.noise = 0.05;
    Rng rng(seed);
    return grow_batch(host_vertices, config, rng);
}

namespace {
std::vector<std::size_t> scaled_fractions(const Options& options,
                                          std::initializer_list<double> fractions) {
    std::vector<std::size_t> sizes;
    for (const double f : fractions) {
        sizes.push_back(std::max<std::size_t>(
            4, static_cast<std::size_t>(f * static_cast<double>(options.scaled_vertices()))));
    }
    return sizes;
}
}  // namespace

std::vector<std::size_t> figure5_batch_sizes(const Options& options) {
    // Paper: 500, 1000, 2000, 3000, 4000, 6000 of 50,000 (1%..12%), plus one
    // extra 16% point: at reduced scale the Figure 6 crossover sits slightly
    // beyond the paper's axis (see EXPERIMENTS.md).
    return scaled_fractions(options, {0.01, 0.02, 0.04, 0.06, 0.08, 0.12, 0.16});
}

std::vector<std::size_t> figure8_step_sizes(const Options& options) {
    // Paper: 51, 187, 383, 561 per step of 50,000 (x10 steps). The paper's
    // smallest fractions collapse to the same integer at reduced host sizes,
    // so they are doubled here (the sweep's 1:3.7:7.5:11 spread is what the
    // figure exercises, not the absolute counts).
    auto sizes = scaled_fractions(options, {0.00204, 0.00748, 0.01532, 0.02244});
    for (std::size_t i = 1; i < sizes.size(); ++i) {
        sizes[i] = std::max(sizes[i], sizes[i - 1] + 1);  // keep strictly rising
    }
    return sizes;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
    rows_.push_back(std::move(row));
}

void Table::print() const {
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c) {
        widths[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    const auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
        }
        std::printf("\n");
    };
    print_row(header_);
    std::size_t total = header_.size() - 1 + 2 * header_.size();
    for (const std::size_t w : widths) {
        total += w;
    }
    for (std::size_t i = 0; i + 2 < total; ++i) {
        std::printf("-");
    }
    std::printf("\n");
    for (const auto& row : rows_) {
        print_row(row);
    }
    std::fflush(stdout);
}

void Table::write_csv(const std::string& path) const {
    if (path.empty()) {
        return;
    }
    const bool fresh = [&] {
        std::ifstream probe(path);
        return !probe.good() || probe.peek() == std::ifstream::traits_type::eof();
    }();
    std::ofstream out(path, std::ios::app);
    const auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c > 0) {
                out << ',';
            }
            out << row[c];
        }
        out << '\n';
    };
    if (fresh) {
        emit(header_);
    }
    for (const auto& row : rows_) {
        emit(row);
    }
}

JsonReport::JsonReport(std::string bench, std::string path)
    : bench_(std::move(bench)), path_(std::move(path)) {}

void JsonReport::add_raw(const std::string& key, std::string json_value) {
    if (!wanted()) {
        return;
    }
    entries_.emplace_back(key, std::move(json_value));
}

void JsonReport::add_timeline(const std::string& label,
                              const AnytimeEngine& engine) {
    if (!wanted()) {
        return;
    }
    timelines_.emplace_back(label, telemetry_json(engine, 6));
}

void JsonReport::set_table(const Table& table) {
    if (!wanted()) {
        return;
    }
    std::string out = "{\n    \"header\": [";
    const auto& header = table.header();
    for (std::size_t c = 0; c < header.size(); ++c) {
        if (c > 0) {
            out += ", ";
        }
        out += "\"" + json_escape(header[c]) + "\"";
    }
    out += "],\n    \"rows\": [";
    const auto& rows = table.rows();
    for (std::size_t r = 0; r < rows.size(); ++r) {
        out += (r == 0 ? "\n" : ",\n");
        out += "      [";
        for (std::size_t c = 0; c < rows[r].size(); ++c) {
            if (c > 0) {
                out += ", ";
            }
            out += "\"" + json_escape(rows[r][c]) + "\"";
        }
        out += "]";
    }
    if (!rows.empty()) {
        out += "\n    ";
    }
    out += "]\n  }";
    table_json_ = std::move(out);
}

bool JsonReport::write() const {
    if (!wanted()) {
        return true;
    }
    std::string out = "{\n  \"bench\": \"" + json_escape(bench_) + "\"";
    for (const auto& [key, value] : entries_) {
        out += ",\n  \"" + json_escape(key) + "\": " + value;
    }
    if (!table_json_.empty()) {
        out += ",\n  \"table\": " + table_json_;
    }
    out += ",\n  \"timelines\": [";
    for (std::size_t i = 0; i < timelines_.size(); ++i) {
        out += (i == 0 ? "\n" : ",\n");
        out += "    {\"label\": \"" + json_escape(timelines_[i].first) +
               "\",\n     \"timeline\": " + timelines_[i].second + "}";
    }
    if (!timelines_.empty()) {
        out += "\n  ";
    }
    out += "]\n}\n";
    std::ofstream file(path_);
    if (!file) {
        std::fprintf(stderr, "cannot open %s\n", path_.c_str());
        return false;
    }
    file << out;
    std::printf("wrote %s\n", path_.c_str());
    return true;
}

JsonReport make_report(const std::string& bench, const Options& options) {
    JsonReport report(bench, options.json);
    report.add_raw("options",
                   "{\"vertices\": " + std::to_string(options.scaled_vertices()) +
                       ", \"ranks\": " + std::to_string(options.ranks) +
                       ", \"threads\": " + std::to_string(options.threads) +
                       ", \"seed\": " + std::to_string(options.seed) + "}");
    return report;
}

std::string fmt_seconds(double seconds) {
    std::ostringstream out;
    out.precision(4);
    out << seconds;
    return out.str();
}

std::string fmt_double(double value, int precision) {
    std::ostringstream out;
    out.precision(precision);
    out << std::fixed << value;
    return out.str();
}

}  // namespace aa::bench
