// Figure 8 reproduction: incremental vertex additions — the batch is spread
// over 10 RC steps (the paper's 51/187/383/561 additions per step,
// cumulative 512/1873/3830/5611 on a 50k host), comparing baseline restart
// with the three strategies.
//
// Expected shape (paper §V.B.3): restart is far above everything (it reruns
// from scratch ten times); RoundRobin-PS and CutEdge-PS win at small
// per-step batches; Repartition-S catches up and wins at the largest.
#include <cstdio>

#include "core/baseline.hpp"
#include "core/strategies.hpp"
#include "harness.hpp"

namespace {

constexpr std::size_t kSteps = 10;

/// Incremental scenario: at each of 10 RC steps, add `per_step` vertices with
/// `strategy`, then converge fully at the end. Returns simulated seconds.
double incremental_run(const aa::DynamicGraph& host, const aa::EngineConfig& config,
                       std::size_t per_step, aa::VertexAdditionStrategy& strategy,
                       std::uint64_t seed,
                       aa::bench::JsonReport* report = nullptr,
                       const std::string& label = "") {
    aa::AnytimeEngine engine(host, config);
    engine.initialize();
    std::size_t host_size = host.num_vertices();
    for (std::size_t step = 0; step < kSteps; ++step) {
        const auto batch = aa::bench::make_batch(host_size, per_step, seed + step);
        engine.apply_addition(batch, strategy);
        host_size += per_step;
        engine.rc_step();  // one refinement step between updates
    }
    engine.run_to_quiescence();
    if (report != nullptr) {
        report->add_timeline(label, engine);
    }
    return engine.sim_seconds();
}

/// Baseline: every update forces a from-scratch recomputation of the grown
/// graph (ten restarts).
double restart_run(const aa::DynamicGraph& host, const aa::EngineConfig& config,
                   std::size_t per_step, std::uint64_t seed) {
    double total = 0;
    aa::DynamicGraph current = host;
    for (std::size_t step = 0; step < kSteps; ++step) {
        const auto batch =
            aa::bench::make_batch(current.num_vertices(), per_step, seed + step);
        current = aa::apply_batch(current, batch);
        total += aa::static_run(current, config).sim_seconds;
    }
    return total;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace aa;
    using namespace aa::bench;

    const Options options = parse_options(
        argc, argv, "fig8: incremental additions over 10 RC steps");
    const EngineConfig config = engine_config(options);
    const DynamicGraph host = make_host_graph(options);

    std::printf("Figure 8: incremental additions (10 steps) on a %zu-vertex graph, "
                "%u ranks\n\n",
                host.num_vertices(), options.ranks);

    JsonReport report = make_report("fig8_incremental", options);
    const auto step_sizes = figure8_step_sizes(options);
    Table table({"per_step(cumulative)", "baseline_restart_s", "repartition_s",
                 "roundrobin_ps_s", "cutedge_ps_s"});
    for (const std::size_t per_step : step_sizes) {
        RepartitionS repartition;
        RoundRobinPS round_robin;
        CutEdgePS cut_edge(options.seed * 5 + 3);
        const std::string label =
            std::to_string(per_step) + "(" + std::to_string(per_step * kSteps) + ")";
        JsonReport* rp = per_step == step_sizes.back() ? &report : nullptr;
        const std::string tag = "@" + std::to_string(per_step);
        table.add_row(
            {label,
             fmt_seconds(restart_run(host, config, per_step, options.seed)),
             fmt_seconds(incremental_run(host, config, per_step, repartition,
                                         options.seed, rp, "repartition" + tag)),
             fmt_seconds(incremental_run(host, config, per_step, round_robin,
                                         options.seed, rp, "roundrobin_ps" + tag)),
             fmt_seconds(incremental_run(host, config, per_step, cut_edge,
                                         options.seed, rp, "cutedge_ps" + tag))});
    }
    table.print();
    table.write_csv(options.csv);
    report.set_table(table);
    report.write();
    return 0;
}
