// Ablation A (design choice from DESIGN.md): the DD-phase partitioner.
// Multilevel (METIS-style) vs BFS region growing vs round-robin vs random,
// measured as google-benchmark timings with edge-cut / imbalance counters.
//
// The paper assumes a cut-minimizing partitioner (ParMETIS); this ablation
// quantifies what that buys over structure-blind baselines on scale-free and
// community graphs.
#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "partition/multilevel.hpp"
#include "partition/simple.hpp"

namespace {

using namespace aa;

DynamicGraph graph_for(int family, std::size_t n) {
    Rng rng(1234);
    switch (family) {
        case 0: return barabasi_albert(n, 3, rng);
        case 1: return planted_partition(n, 8, 40.0 / static_cast<double>(n),
                                         2.0 / static_cast<double>(n), rng);
        default: return watts_strogatz(n, 3, 0.1, rng);
    }
}

void report(benchmark::State& state, const DynamicGraph& g, const Partitioning& p) {
    const auto q = evaluate_partition(g, p);
    state.counters["cut_edges"] = static_cast<double>(q.cut_edges);
    state.counters["imbalance"] = q.imbalance;
    state.counters["cut_frac"] =
        static_cast<double>(q.cut_edges) / static_cast<double>(g.num_edges());
}

void BM_Multilevel(benchmark::State& state) {
    const auto g = graph_for(static_cast<int>(state.range(0)), 4000);
    const auto k = static_cast<std::uint32_t>(state.range(1));
    Partitioning p;
    for (auto _ : state) {
        Rng rng(7);
        p = multilevel_partition(g, k, rng);
        benchmark::DoNotOptimize(p);
    }
    report(state, g, p);
}
BENCHMARK(BM_Multilevel)
    ->ArgsProduct({{0, 1}, {4, 16}})
    ->Unit(benchmark::kMillisecond);

void BM_BfsGrowing(benchmark::State& state) {
    const auto g = graph_for(static_cast<int>(state.range(0)), 4000);
    const auto k = static_cast<std::uint32_t>(state.range(1));
    Partitioning p;
    for (auto _ : state) {
        Rng rng(7);
        p = bfs_partition(g, k, rng);
        benchmark::DoNotOptimize(p);
    }
    report(state, g, p);
}
BENCHMARK(BM_BfsGrowing)
    ->ArgsProduct({{0, 1}, {4, 16}})
    ->Unit(benchmark::kMillisecond);

void BM_RoundRobin(benchmark::State& state) {
    const auto g = graph_for(static_cast<int>(state.range(0)), 4000);
    const auto k = static_cast<std::uint32_t>(state.range(1));
    Partitioning p;
    for (auto _ : state) {
        p = round_robin_partition(g.num_vertices(), k);
        benchmark::DoNotOptimize(p);
    }
    report(state, g, p);
}
BENCHMARK(BM_RoundRobin)
    ->ArgsProduct({{0, 1}, {4, 16}})
    ->Unit(benchmark::kMillisecond);

void BM_Random(benchmark::State& state) {
    const auto g = graph_for(static_cast<int>(state.range(0)), 4000);
    const auto k = static_cast<std::uint32_t>(state.range(1));
    Partitioning p;
    for (auto _ : state) {
        Rng rng(7);
        p = random_partition(g.num_vertices(), k, rng);
        benchmark::DoNotOptimize(p);
    }
    report(state, g, p);
}
BENCHMARK(BM_Random)
    ->ArgsProduct({{0, 1}, {4, 16}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
