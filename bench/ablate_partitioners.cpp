// Ablation A (design choice from DESIGN.md): the DD-phase partitioner.
// Multilevel (METIS-style) vs BFS region growing vs round-robin vs random,
// measured as google-benchmark timings with edge-cut / imbalance counters.
//
// The paper assumes a cut-minimizing partitioner (ParMETIS); this ablation
// quantifies what that buys over structure-blind baselines on scale-free and
// community graphs.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string_view>

#include "common/metrics.hpp"
#include "graph/generators.hpp"
#include "partition/multilevel.hpp"
#include "partition/simple.hpp"

namespace {

using namespace aa;

DynamicGraph graph_for(int family, std::size_t n) {
    Rng rng(1234);
    switch (family) {
        case 0: return barabasi_albert(n, 3, rng);
        case 1: return planted_partition(n, 8, 40.0 / static_cast<double>(n),
                                         2.0 / static_cast<double>(n), rng);
        default: return watts_strogatz(n, 3, 0.1, rng);
    }
}

void report(benchmark::State& state, const DynamicGraph& g, const Partitioning& p) {
    const auto q = evaluate_partition(g, p);
    state.counters["cut_edges"] = static_cast<double>(q.cut_edges);
    state.counters["imbalance"] = q.imbalance;
    state.counters["cut_frac"] =
        static_cast<double>(q.cut_edges) / static_cast<double>(g.num_edges());
}

void BM_Multilevel(benchmark::State& state) {
    const auto g = graph_for(static_cast<int>(state.range(0)), 4000);
    const auto k = static_cast<std::uint32_t>(state.range(1));
    Partitioning p;
    for (auto _ : state) {
        Rng rng(7);
        p = multilevel_partition(g, k, rng);
        benchmark::DoNotOptimize(p);
    }
    report(state, g, p);
}
BENCHMARK(BM_Multilevel)
    ->ArgsProduct({{0, 1}, {4, 16}})
    ->Unit(benchmark::kMillisecond);

void BM_BfsGrowing(benchmark::State& state) {
    const auto g = graph_for(static_cast<int>(state.range(0)), 4000);
    const auto k = static_cast<std::uint32_t>(state.range(1));
    Partitioning p;
    for (auto _ : state) {
        Rng rng(7);
        p = bfs_partition(g, k, rng);
        benchmark::DoNotOptimize(p);
    }
    report(state, g, p);
}
BENCHMARK(BM_BfsGrowing)
    ->ArgsProduct({{0, 1}, {4, 16}})
    ->Unit(benchmark::kMillisecond);

void BM_RoundRobin(benchmark::State& state) {
    const auto g = graph_for(static_cast<int>(state.range(0)), 4000);
    const auto k = static_cast<std::uint32_t>(state.range(1));
    Partitioning p;
    for (auto _ : state) {
        p = round_robin_partition(g.num_vertices(), k);
        benchmark::DoNotOptimize(p);
    }
    report(state, g, p);
}
BENCHMARK(BM_RoundRobin)
    ->ArgsProduct({{0, 1}, {4, 16}})
    ->Unit(benchmark::kMillisecond);

void BM_Random(benchmark::State& state) {
    const auto g = graph_for(static_cast<int>(state.range(0)), 4000);
    const auto k = static_cast<std::uint32_t>(state.range(1));
    Partitioning p;
    for (auto _ : state) {
        Rng rng(7);
        p = random_partition(g.num_vertices(), k, rng);
        benchmark::DoNotOptimize(p);
    }
    report(state, g, p);
}
BENCHMARK(BM_Random)
    ->ArgsProduct({{0, 1}, {4, 16}})
    ->Unit(benchmark::kMillisecond);

/// Supplemental timeline report (--json PATH): one extra, unmeasured run per
/// (partitioner, family, k), recorded as "dd.<algo>" spans on the host clock
/// with the cut/imbalance quality as attributes — the same span schema the
/// engine emits for its DD phase, so downstream tooling can compare the
/// partitioner choice against in-engine DD timings.
bool write_timeline(const std::string& path) {
    using Clock = std::chrono::steady_clock;
    MetricsRegistry registry;
    registry.enable();
    const auto t_start = Clock::now();
    const auto secs = [&t_start] {
        return std::chrono::duration<double>(Clock::now() - t_start).count();
    };
    const char* family_names[2] = {"barabasi-albert", "planted-partition"};
    struct Algo {
        const char* name;
        Partitioning (*run)(const DynamicGraph&, std::uint32_t, Rng&);
    };
    const Algo algos[] = {
        {"dd.multilevel", +[](const DynamicGraph& g, std::uint32_t k, Rng& rng) {
             return multilevel_partition(g, k, rng);
         }},
        {"dd.bfs", +[](const DynamicGraph& g, std::uint32_t k, Rng& rng) {
             return bfs_partition(g, k, rng);
         }},
        {"dd.round_robin", +[](const DynamicGraph& g, std::uint32_t k, Rng&) {
             return round_robin_partition(g.num_vertices(), k);
         }},
        {"dd.random", +[](const DynamicGraph& g, std::uint32_t k, Rng& rng) {
             return random_partition(g.num_vertices(), k, rng);
         }},
    };
    for (int family = 0; family < 2; ++family) {
        const DynamicGraph g = graph_for(family, 4000);
        for (const std::uint32_t k : {4u, 16u}) {
            for (const Algo& algo : algos) {
                Rng rng(7);
                const double t0 = secs();
                const Partitioning p = algo.run(g, k, rng);
                const auto h = registry.span_open(algo.name, -1, -1, t0);
                registry.span_close(h, secs());
                const auto q = evaluate_partition(g, p);
                registry.span_attr(h, "family", family_names[family]);
                registry.span_attr(h, "ranks", std::to_string(k));
                registry.span_attr(h, "cut_edges", std::to_string(q.cut_edges));
                char imb[32];
                std::snprintf(imb, sizeof(imb), "%.4f", q.imbalance);
                registry.span_attr(h, "imbalance", imb);
            }
        }
    }
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return false;
    }
    const std::string metrics = metrics_to_json(registry, 2);
    std::fprintf(f,
                 "{\n  \"bench\": \"ablate_partitioners\",\n"
                 "  \"clock\": \"wall\",\n  \"metrics\": %s\n}\n",
                 metrics.c_str());
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): strip our --json flag before
// google-benchmark's flag parser rejects it as unrecognized.
int main(int argc, char** argv) {
    std::string json_path;
    std::vector<char*> args;
    for (int i = 0; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--json" && i + 1 < argc) {
            json_path = argv[++i];
            continue;
        }
        args.push_back(argv[i]);
    }
    int bench_argc = static_cast<int>(args.size());
    benchmark::Initialize(&bench_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (!json_path.empty() && !write_timeline(json_path)) {
        return 1;
    }
    return 0;
}
