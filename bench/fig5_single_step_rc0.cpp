// Figure 5 reproduction: RoundRobin-PS vs CutEdge-PS vs Repartition-S for a
// single community-structured batch (1%..12% of the host, the paper's
// 500..6000 of 50,000) injected at RC0 (start of the analysis).
//
// Expected shape (paper §V.B.2): RoundRobin-PS and CutEdge-PS win for small
// batches (low fixed overhead); the dynamic-update cost grows with the batch
// until Repartition-S — whose repartition+migration cost is roughly flat —
// crosses below them.
#include <cstdio>

#include "core/strategies.hpp"
#include "harness.hpp"

namespace {

/// Simulated completion time of: initialize, progress to `inject_step`,
/// apply `batch` with `strategy`, converge. When `report` is non-null the
/// run's timeline is recorded under `label`.
double run_scenario(const aa::DynamicGraph& host, const aa::EngineConfig& config,
                    std::size_t inject_step, const aa::GrowthBatch& batch,
                    aa::VertexAdditionStrategy& strategy,
                    aa::bench::JsonReport* report = nullptr,
                    const std::string& label = "") {
    aa::AnytimeEngine engine(host, config);
    engine.initialize();
    engine.run_rc_steps(inject_step);
    engine.apply_addition(batch, strategy);
    engine.run_to_quiescence();
    if (report != nullptr) {
        report->add_timeline(label, engine);
    }
    return engine.sim_seconds();
}

}  // namespace

int main(int argc, char** argv) {
    using namespace aa;
    using namespace aa::bench;

    const Options options = parse_options(
        argc, argv, "fig5: strategy comparison, single batch at RC0");
    const EngineConfig config = engine_config(options);
    const DynamicGraph host = make_host_graph(options);

    std::printf("Figure 5: vertex additions at RC0 on a %zu-vertex graph, %u ranks\n\n",
                host.num_vertices(), options.ranks);

    JsonReport report = make_report("fig5_single_step_rc0", options);
    const auto batch_sizes = figure5_batch_sizes(options);
    Table table({"batch", "repartition_s", "cutedge_ps_s", "roundrobin_ps_s"});
    for (const std::size_t batch_size : batch_sizes) {
        const GrowthBatch batch =
            make_batch(host.num_vertices(), batch_size, options.seed + batch_size);
        RepartitionS repartition;
        CutEdgePS cut_edge(options.seed * 3 + 1);
        RoundRobinPS round_robin;
        // One timeline per strategy, at the sweep's largest batch.
        JsonReport* rp = batch_size == batch_sizes.back() ? &report : nullptr;
        const std::string tag = "@" + std::to_string(batch_size);
        table.add_row({std::to_string(batch_size),
                       fmt_seconds(run_scenario(host, config, 0, batch, repartition,
                                                rp, "repartition" + tag)),
                       fmt_seconds(run_scenario(host, config, 0, batch, cut_edge,
                                                rp, "cutedge_ps" + tag)),
                       fmt_seconds(run_scenario(host, config, 0, batch, round_robin,
                                                rp, "roundrobin_ps" + tag))});
    }
    table.print();
    table.write_csv(options.csv);
    report.set_table(table);
    report.write();
    return 0;
}
