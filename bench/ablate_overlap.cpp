// Exchange-overlap ablation: step-synchronous vs event-driven (relax-on-
// arrival) RC steps, under the serialized and pipelined wires, on an R-MAT
// instance at engine level. All four configurations replay the identical
// relaxation schedule — the bench enforces bit-identical distance checksums,
// op counts and message traffic before it will write a report, so a faster
// timeline can never come from doing less work. The headline number is the
// simulated seconds spent in the RC phase (DD + IA are a bit-identical
// prologue shared by every configuration); the acceptance bar is a >= 20%
// reduction for async+pipelined vs the sync+serialized baseline at P=8 under
// the per-byte price model.
//
// Emits a JSON report (--out, default BENCH_overlap.json) recorded in the
// repository root; build with the `bench` preset (-O3) for quotable numbers.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"

namespace aa {
namespace {

struct BenchOptions {
    std::size_t vertices{20000};
    std::size_t edges{90000};
    std::size_t threads{8};
    int steps{8};
    std::uint64_t seed{42};
    std::string out{"BENCH_overlap.json"};
};

BenchOptions parse(int argc, char** argv) {
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", flag.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (flag == "--n") {
            opt.vertices = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--edges") {
            opt.edges = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--threads") {
            opt.threads = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--steps") {
            opt.steps = std::atoi(next().c_str());
        } else if (flag == "--seed") {
            opt.seed = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--out") {
            opt.out = next();
        } else {
            std::fprintf(stderr,
                         "usage: ablate_overlap [--n N] [--edges M] "
                         "[--threads T] [--steps R] [--seed S] [--out PATH]\n");
            std::exit(2);
        }
    }
    if (opt.vertices == 0 || opt.threads == 0 || opt.steps < 1) {
        std::fprintf(stderr, "--n, --threads must be positive and --steps >= 1\n");
        std::exit(2);
    }
    return opt;
}

/// Exactly `n` vertices of R-MAT structure (same construction as the RC
/// kernel and wire-format ablations so the benches describe one instance).
DynamicGraph filtered_rmat(std::size_t n, std::size_t edges, Rng& rng) {
    std::size_t scale = 1;
    while ((std::size_t{1} << scale) < n) {
        ++scale;
    }
    const std::size_t oversample = edges * 2;
    const DynamicGraph big = rmat(scale, oversample, rng);
    DynamicGraph g(n);
    std::size_t kept = 0;
    for (VertexId u = 0; u < big.num_vertices() && kept < edges; ++u) {
        for (const Neighbor& nb : big.neighbors(u)) {
            if (u < nb.to && nb.to < n && kept < edges) {
                kept += g.add_edge(u, nb.to, nb.weight) ? 1 : 0;
            }
        }
    }
    return g;
}

struct Config {
    const char* name;
    bool rc_async;
    CommSchedule schedule;
};

struct ConfigResult {
    double rc_sim_seconds{0};     // simulated clock spent in the RC steps
    double total_sim_seconds{0};  // including the shared DD + IA prologue
    double wall_seconds{0};
    double ops{0};
    double checksum{0};
    std::size_t messages{0};
    std::size_t bytes{0};
    std::size_t steps_run{0};
};

ConfigResult run_config(const DynamicGraph& g, const Config& cfg,
                        std::uint32_t num_ranks, const BenchOptions& opt) {
    using Clock = std::chrono::steady_clock;
    EngineConfig config;
    config.num_ranks = num_ranks;
    config.ia_threads = opt.threads;
    config.seed = opt.seed;
    config.rc_async = cfg.rc_async;
    config.schedule = cfg.schedule;
    config.price_model = PriceModel::PerByte;

    const auto t0 = Clock::now();
    AnytimeEngine engine(g, config);
    engine.initialize();
    const double sim_after_ia = engine.sim_seconds();
    ConfigResult result;
    result.steps_run = engine.run_rc_steps(static_cast<std::size_t>(opt.steps));
    result.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    result.total_sim_seconds = engine.sim_seconds();
    result.rc_sim_seconds = result.total_sim_seconds - sim_after_ia;
    for (const RcStepStats& s : engine.step_history()) {
        result.ops += s.ops;
        result.messages += s.messages;
        result.bytes += s.bytes;
    }
    // Distance checksum without materializing the n x n matrix.
    engine.visit_rows([&result](VertexId, std::span<const Weight> row) {
        for (const Weight w : row) {
            if (w < kInfinity) {
                result.checksum += w;
            }
        }
    });
    return result;
}

}  // namespace
}  // namespace aa

int main(int argc, char** argv) {
    using namespace aa;
    const BenchOptions opt = parse(argc, argv);

    Rng graph_rng(opt.seed);
    const DynamicGraph g = filtered_rmat(opt.vertices, opt.edges, graph_rng);
    std::printf("overlap ablation: n=%zu edges=%zu threads=%zu steps=%d\n",
                g.num_vertices(), g.num_edges(), opt.threads, opt.steps);

    const Config configs[] = {
        {"sync+serialized", false, CommSchedule::SerializedAllToAll},
        {"sync+pipelined", false, CommSchedule::Pipelined},
        {"async+serialized", true, CommSchedule::SerializedAllToAll},
        {"async+pipelined", true, CommSchedule::Pipelined},
    };
    constexpr int kConfigs = 4;

    std::string json;
    json += "{\n  \"bench\": \"overlap\",\n";
    json += "  \"graph\": {\"generator\": \"filtered-rmat\", \"n\": " +
            std::to_string(g.num_vertices()) +
            ", \"edges\": " + std::to_string(g.num_edges()) + "},\n";
    json += "  \"threads\": " + std::to_string(opt.threads) +
            ",\n  \"steps\": " + std::to_string(opt.steps) +
            ",\n  \"seed\": " + std::to_string(opt.seed) +
            ",\n  \"price_model\": \"per_byte\",\n";
    const unsigned hw_threads_raw = std::thread::hardware_concurrency();
    const unsigned hw_threads = hw_threads_raw == 0 ? 1 : hw_threads_raw;
    json += "  \"host_hardware_concurrency\": " + std::to_string(hw_threads) +
            ",\n  \"configs\": [\n";

    bool all_bars_met = true;
    bool first_entry = true;
    for (const std::uint32_t num_ranks : {4u, 8u}) {
        std::printf("-- P=%u\n", num_ranks);
        ConfigResult results[kConfigs];
        for (int c = 0; c < kConfigs; ++c) {
            results[c] = run_config(g, configs[c], num_ranks, opt);
            std::printf("   %-17s rc_sim %9.3fs  total_sim %9.3fs  wall %7.2fs  "
                        "ops %.3e\n",
                        configs[c].name, results[c].rc_sim_seconds,
                        results[c].total_sim_seconds, results[c].wall_seconds,
                        results[c].ops);
        }

        // Bit-identity cross-check: every configuration reaches the same
        // distances with the same relaxation work and the same traffic. A
        // mismatch means the overlap machinery changed results — hard fail.
        for (int c = 1; c < kConfigs; ++c) {
            if (results[c].checksum != results[0].checksum ||
                results[c].ops != results[0].ops ||
                results[c].messages != results[0].messages ||
                results[c].bytes != results[0].bytes ||
                results[c].steps_run != results[0].steps_run) {
                std::fprintf(stderr, "CONFIG MISMATCH vs sync+serialized: %s\n",
                             configs[c].name);
                return 1;
            }
        }

        const double reduction =
            1.0 - results[3].rc_sim_seconds / results[0].rc_sim_seconds;
        std::printf("   async+pipelined rc_sim reduction: %.1f%%"
                    " (bar at P=8: >= 20%%)\n",
                    reduction * 100.0);
        if (num_ranks == 8 && reduction < 0.20) {
            std::fprintf(stderr, "OVERLAP BAR MISSED at P=%u: %.3f\n", num_ranks,
                         reduction);
            all_bars_met = false;
        }

        if (!first_entry) {
            json += ",\n";
        }
        first_entry = false;
        json += "    {\"ranks\": " + std::to_string(num_ranks) +
                ", \"configs\": [";
        for (int c = 0; c < kConfigs; ++c) {
            if (c > 0) {
                json += ", ";
            }
            char buf[320];
            std::snprintf(buf, sizeof(buf),
                          "{\"name\": \"%s\", \"rc_sim_seconds\": %.6f, "
                          "\"total_sim_seconds\": %.6f, \"wall_seconds\": %.3f, "
                          "\"ops\": %.0f, \"messages\": %zu, \"bytes\": %zu}",
                          configs[c].name, results[c].rc_sim_seconds,
                          results[c].total_sim_seconds, results[c].wall_seconds,
                          results[c].ops, results[c].messages, results[c].bytes);
            json += buf;
        }
        char tail[160];
        std::snprintf(tail, sizeof(tail),
                      "],\n     \"rc_sim_reduction\": %.4f, \"checksum\": %.6f}",
                      reduction, results[0].checksum);
        json += tail;
    }
    json += "\n  ]\n}\n";

    if (!all_bars_met) {
        std::fprintf(stderr, "acceptance bar missed; not writing %s\n",
                     opt.out.c_str());
        return 1;
    }
    if (!opt.out.empty()) {
        std::FILE* f = std::fopen(opt.out.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot open %s\n", opt.out.c_str());
            return 1;
        }
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("wrote %s\n", opt.out.c_str());
    }
    return 0;
}
