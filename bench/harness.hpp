// Shared support for the figure-reproduction benchmark binaries: CLI flags,
// experiment configuration scaled from the paper's setup, workload
// construction, and aligned table output.
//
// The paper's experiments use a 50,000-vertex scale-free graph on 16
// processors. Full APSP state at that size is ~20 GB, so the default here is
// a proportionally scaled-down instance (every batch size is the same
// *fraction* of the host graph as in the paper); pass --vertices to change
// it. See EXPERIMENTS.md for the scaling argument and recorded outputs.
#pragma once

#include <string>
#include <vector>

#include "core/engine.hpp"
#include "graph/generators.hpp"

namespace aa::bench {

struct Options {
    /// Host graph size (paper: 50,000).
    std::size_t vertices{1200};
    /// Simulated processors (paper: 16).
    std::uint32_t ranks{16};
    /// IA threads per rank (paper: multithreaded Dijkstra via OpenMP).
    std::size_t threads{4};
    std::uint64_t seed{42};
    /// Multiplier on vertices (and hence batch sizes): --scale 0.5 for quick
    /// runs, 2.0 for larger ones.
    double scale{1.0};
    /// Optional CSV output path ("" = none).
    std::string csv;

    std::size_t scaled_vertices() const {
        return static_cast<std::size_t>(static_cast<double>(vertices) * scale);
    }
};

/// Parse --vertices/--ranks/--threads/--seed/--scale/--csv. Unknown flags
/// abort with a usage message. Returns the options.
Options parse_options(int argc, char** argv, const std::string& description);

/// Engine configuration matching the paper's setup at the chosen scale.
EngineConfig engine_config(const Options& options);

/// The benchmark host graph: an undirected scale-free (Barabasi-Albert)
/// graph, as the paper generates with Pajek.
DynamicGraph make_host_graph(const Options& options);

/// A community-structured batch (the paper extracts batches with Louvain so
/// they carry community structure; see DESIGN.md).
GrowthBatch make_batch(std::size_t host_vertices, std::size_t count,
                       std::uint64_t seed);

/// The paper's batch-size sweep (500..6000 on a 50k host) as fractions of the
/// configured host size.
std::vector<std::size_t> figure5_batch_sizes(const Options& options);

/// The paper's Figure 8 per-step addition counts (51/187/383/561 per RC step
/// on a 50k host) as fractions of the configured host size.
std::vector<std::size_t> figure8_step_sizes(const Options& options);

// ---- output --------------------------------------------------------------

class Table {
public:
    explicit Table(std::vector<std::string> header);

    void add_row(std::vector<std::string> row);
    /// Print aligned columns to stdout.
    void print() const;
    /// Append as CSV to `path` (writes header if the file is new/empty).
    void write_csv(const std::string& path) const;

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

std::string fmt_seconds(double seconds);
std::string fmt_double(double value, int precision = 3);

}  // namespace aa::bench
