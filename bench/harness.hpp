// Shared support for the figure-reproduction benchmark binaries: CLI flags,
// experiment configuration scaled from the paper's setup, workload
// construction, and aligned table output.
//
// The paper's experiments use a 50,000-vertex scale-free graph on 16
// processors. Full APSP state at that size is ~20 GB, so the default here is
// a proportionally scaled-down instance (every batch size is the same
// *fraction* of the host graph as in the paper); pass --vertices to change
// it. See EXPERIMENTS.md for the scaling argument and recorded outputs.
#pragma once

#include <string>
#include <vector>

#include "core/engine.hpp"
#include "graph/generators.hpp"

namespace aa::bench {

struct Options {
    /// Host graph size (paper: 50,000).
    std::size_t vertices{1200};
    /// Simulated processors (paper: 16).
    std::uint32_t ranks{16};
    /// IA threads per rank (paper: multithreaded Dijkstra via OpenMP).
    std::size_t threads{4};
    std::uint64_t seed{42};
    /// Multiplier on vertices (and hence batch sizes): --scale 0.5 for quick
    /// runs, 2.0 for larger ones.
    double scale{1.0};
    /// Optional CSV output path ("" = none).
    std::string csv;
    /// Optional JSON report path ("" = none). When set, engine_config()
    /// enables the engine's MetricsRegistry so the report carries the full
    /// per-step, per-rank timeline (aa.timeline.v1; see core/telemetry.hpp).
    std::string json;

    std::size_t scaled_vertices() const {
        return static_cast<std::size_t>(static_cast<double>(vertices) * scale);
    }
};

/// Parse --vertices/--ranks/--threads/--seed/--scale/--csv/--json. Unknown
/// flags abort with a usage message. Returns the options.
Options parse_options(int argc, char** argv, const std::string& description);

/// Engine configuration matching the paper's setup at the chosen scale.
EngineConfig engine_config(const Options& options);

/// The benchmark host graph: an undirected scale-free (Barabasi-Albert)
/// graph, as the paper generates with Pajek.
DynamicGraph make_host_graph(const Options& options);

/// A community-structured batch (the paper extracts batches with Louvain so
/// they carry community structure; see DESIGN.md).
GrowthBatch make_batch(std::size_t host_vertices, std::size_t count,
                       std::uint64_t seed);

/// The paper's batch-size sweep (500..6000 on a 50k host) as fractions of the
/// configured host size.
std::vector<std::size_t> figure5_batch_sizes(const Options& options);

/// The paper's Figure 8 per-step addition counts (51/187/383/561 per RC step
/// on a 50k host) as fractions of the configured host size.
std::vector<std::size_t> figure8_step_sizes(const Options& options);

// ---- output --------------------------------------------------------------

class Table {
public:
    explicit Table(std::vector<std::string> header);

    void add_row(std::vector<std::string> row);
    /// Print aligned columns to stdout.
    void print() const;
    /// Append as CSV to `path` (writes header if the file is new/empty).
    void write_csv(const std::string& path) const;

    const std::vector<std::string>& header() const { return header_; }
    const std::vector<std::vector<std::string>>& rows() const { return rows_; }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

std::string fmt_seconds(double seconds);
std::string fmt_double(double value, int precision = 3);

/// JSON report writer shared by every figure/ablation binary: the printed
/// table plus one aa.timeline.v1 block per recorded engine run, so each
/// bench's JSON shows where simulated time and traffic went per rank and per
/// phase. Inert (records nothing, writes nothing) when the path is empty —
/// i.e. when --json was not passed.
class JsonReport {
public:
    JsonReport(std::string bench, std::string path);

    bool wanted() const { return !path_.empty(); }

    /// Add a top-level key with a pre-rendered JSON value (number, string
    /// literal including quotes, or object).
    void add_raw(const std::string& key, std::string json_value);
    /// Capture the engine's timeline under `label` (call while the engine
    /// still holds the run's metrics, e.g. right after run_to_quiescence).
    void add_timeline(const std::string& label, const AnytimeEngine& engine);
    /// Capture the result table (header + rows, as printed).
    void set_table(const Table& table);

    /// Write the report to the path. Returns false on I/O failure (also
    /// printing a diagnostic); true when written or when inert.
    bool write() const;

private:
    std::string bench_;
    std::string path_;
    std::vector<std::pair<std::string, std::string>> entries_;  // key -> raw
    std::vector<std::pair<std::string, std::string>> timelines_;
    std::string table_json_;
};

/// The standard report for a harness-based bench: path from --json, options
/// echoed into the report.
JsonReport make_report(const std::string& bench, const Options& options);

}  // namespace aa::bench
