// Incremental-migration ablation: does telemetry-driven shard migration
// actually flatten a skewed per-rank load — without changing a single bit of
// the converged answers?
//
// Protocol: a unit-weight Barabási–Albert host on 8 ranks. After the initial
// convergence, a hotspot is *manufactured*: every shard of rank 1 is moved
// onto rank 0, so rank 0 owns ~2x the rows and rank 1 none — the worst-case
// ownership skew an adversarial join pattern could produce. Then an identical
// growth workload (several batches, each run to quiescence) is replayed
// twice: once with the planner disabled (the skew persists) and once with
// auto_migrate on (the planner sees the skewed relax ops through its EWMA
// and repoints shards hot -> cold at step boundaries, bounded moves, rows
// shipped over the boundary-block wire). The per-rank relaxation ops over
// the steady-state tail of the workload (the last two batches, with the
// planner frozen so no drain work lands inside the window) — summed from
// the rc.post / rc.ingest / rc.propagate telemetry spans — give each
// mode's max/mean load imbalance.
//
// Two bars are enforced before the report is written, so BENCH_migrate.json
// can only exist for a correct build:
//   - both modes land on bit-identical converged closeness (checksum
//     cross-check — migration must never change answers);
//   - auto-migration removes >= 25% of the excess imbalance:
//     (I_auto - 1) <= 0.75 * (I_none - 1), where I = max/mean rank ops.
//
// Emits a JSON report (--out, default BENCH_migrate.json) recorded in the
// repository root; build with the `bench` preset (-O3) for quotable numbers.
#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "core/strategies.hpp"
#include "graph/generators.hpp"

namespace aa {
namespace {

struct BenchOptions {
    std::size_t vertices{600};
    std::size_t edge_factor{3};
    std::uint64_t seed{42};
    std::size_t batches{5};
    std::size_t batch_size{16};
    std::string out{"BENCH_migrate.json"};
};

BenchOptions parse(int argc, char** argv) {
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", flag.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (flag == "--n") {
            opt.vertices = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--seed") {
            opt.seed = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--batches") {
            opt.batches = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--batch-size") {
            opt.batch_size = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--out") {
            opt.out = next();
        } else {
            std::fprintf(stderr,
                         "usage: ablate_migrate [--n N] [--seed S] "
                         "[--batches B] [--batch-size K] [--out PATH]\n");
            std::exit(2);
        }
    }
    return opt;
}

/// Order-independent bit-exact digest of a closeness result (same formula as
/// the other ablations, so reports are cross-comparable).
std::uint64_t closeness_checksum(const ClosenessScores& scores) {
    std::uint64_t sum = 0;
    for (std::size_t v = 0; v < scores.closeness.size(); ++v) {
        const std::uint64_t bits =
            std::bit_cast<std::uint64_t>(scores.closeness[v]);
        sum += (bits ^ (v * 0x9E3779B97F4A7C15ull)) + scores.reachable[v];
    }
    return sum;
}

bool is_relax_span(std::string_view name) {
    return name == "rc.post" || name == "rc.ingest" ||
           name == "rc.ingest.early" || name == "rc.propagate";
}

struct ModeRun {
    bool auto_migrate{false};
    std::vector<double> rank_ops;
    double imbalance{1.0};
    std::size_t shard_migrations{0};
    std::size_t migrated_rows{0};
    std::size_t rc_steps{0};
    std::uint64_t checksum{0};
};

ModeRun run_mode(const DynamicGraph& host, EngineConfig config,
                 bool auto_migrate, const BenchOptions& opt) {
    config.auto_migrate = auto_migrate;
    AnytimeEngine engine(host, config);
    engine.initialize();
    engine.run_to_quiescence();

    // Manufacture the hotspot: pile every one of rank 1's shards onto
    // rank 0. Both modes start the workload from this identical skew.
    std::vector<ShardMove> skew;
    const ShardOwnership& ownership = engine.shard_ownership();
    for (ShardId s = 0; s < ownership.num_shards(); ++s) {
        if (ownership.rank_of(s) == 1) {
            skew.push_back({s, 1, 0});
        }
    }
    engine.migrate_shards(skew);
    const std::size_t skew_moves = engine.report().shard_migrations;
    const std::size_t skew_rows = engine.report().migrated_rows;
    engine.run_to_quiescence();

    // Warm-up batches let the planner see the skew and rebalance; the
    // *measured* window is the steady-state tail (the last `measure`
    // batches), where the sustained per-rank load — not the one-off drain
    // cost of the moves themselves — is what each mode pays.
    const std::size_t measure = std::min<std::size_t>(2, opt.batches);
    std::size_t span_offset = 0;
    RoundRobinPS strategy;
    Rng batch_rng(opt.seed * 131 + 5);
    for (std::size_t b = 0; b < opt.batches; ++b) {
        if (b == opt.batches - measure) {
            // Freeze ownership for the measured tail. The planner had the
            // warm-up batches to rebalance; the tail then measures sustained
            // load on the final assignment, with the one-off drain cost of
            // each move excluded symmetrically ("none" pays no drain either).
            engine.set_auto_migrate(false);
            span_offset = engine.metrics().spans().size();
        }
        GrowthConfig gc;
        gc.num_new = opt.batch_size;
        gc.communities = 2;
        gc.intra_edges = 2;
        gc.host_edges = 2;
        Rng rng = batch_rng.fork();
        const auto batch = grow_batch(engine.num_vertices(), gc, rng);
        engine.apply_addition(batch, strategy);
        engine.run_to_quiescence();
    }

    ModeRun run;
    run.auto_migrate = auto_migrate;
    run.rank_ops.assign(config.num_ranks, 0.0);
    const auto& spans = engine.metrics().spans();
    for (std::size_t i = span_offset; i < spans.size(); ++i) {
        if (spans[i].rank >= 0 && is_relax_span(spans[i].name)) {
            run.rank_ops[static_cast<std::size_t>(spans[i].rank)] +=
                spans[i].ops;
        }
    }
    double total = 0;
    double max = 0;
    for (const double ops : run.rank_ops) {
        total += ops;
        max = std::max(max, ops);
    }
    const double mean = total / static_cast<double>(config.num_ranks);
    run.imbalance = mean > 0 ? max / mean : 1.0;
    run.shard_migrations = engine.report().shard_migrations - skew_moves;
    run.migrated_rows = engine.report().migrated_rows - skew_rows;
    run.rc_steps = engine.rc_steps_completed();
    run.checksum = closeness_checksum(engine.closeness());
    return run;
}

}  // namespace
}  // namespace aa

int main(int argc, char** argv) {
    using namespace aa;
    const BenchOptions opt = parse(argc, argv);

    EngineConfig config;
    config.num_ranks = 8;
    config.ia_threads = 4;
    config.seed = opt.seed;
    config.enable_metrics = true;  // the per-rank relax spans ARE the metric
    config.migrate_max_shards = 2;
    config.migrate_imbalance_threshold = 1.35;

    // Unit weights (the BA generator's default) make the converged fixpoint
    // unique down to the bits under any ownership, which is what lets the
    // checksum cross-check demand exact equality across modes.
    Rng graph_rng(opt.seed);
    const DynamicGraph host =
        barabasi_albert(opt.vertices, opt.edge_factor, graph_rng);
    std::printf("migrate ablation: n=%zu edges=%zu ranks=%u "
                "shards/rank=%u batches=%zux%zu\n",
                host.num_vertices(), host.num_edges(), config.num_ranks,
                config.shards_per_rank, opt.batches, opt.batch_size);

    const ModeRun none = run_mode(host, config, false, opt);
    const ModeRun autom = run_mode(host, config, true, opt);

    if (none.checksum != autom.checksum) {
        std::fprintf(stderr,
                     "MIGRATE MISMATCH: converged closeness checksum "
                     "%016llx (none) != %016llx (auto)\n",
                     static_cast<unsigned long long>(none.checksum),
                     static_cast<unsigned long long>(autom.checksum));
        return 1;
    }

    for (const ModeRun* run : {&none, &autom}) {
        std::printf("   %-5s imbalance=%.3f  migrations=%zu (%zu rows)  "
                    "rc_steps=%zu\n          rank ops:",
                    run->auto_migrate ? "auto" : "none", run->imbalance,
                    run->shard_migrations, run->migrated_rows, run->rc_steps);
        for (const double ops : run->rank_ops) {
            std::printf(" %.3g", ops);
        }
        std::printf("\n");
    }
    const double excess_none = none.imbalance - 1.0;
    const double excess_auto = autom.imbalance - 1.0;
    const double reduction =
        excess_none > 0 ? 1.0 - excess_auto / excess_none : 0.0;
    std::printf("   excess-imbalance reduction: %.1f%%\n", 100.0 * reduction);

    // The acceptance bar: the planner must remove at least a quarter of the
    // manufactured excess imbalance. A report that fails the bar is not
    // written.
    if (reduction < 0.25) {
        std::fprintf(stderr,
                     "MIGRATE BAR MISSED: excess-imbalance reduction "
                     "%.1f%% < 25%%\n",
                     100.0 * reduction);
        return 1;
    }

    // hardware_concurrency() may return 0 when not computable; clamp to 1 so
    // the report never divides by it accidentally downstream.
    const unsigned hw_raw = std::thread::hardware_concurrency();
    const unsigned hw_threads = hw_raw == 0 ? 1 : hw_raw;

    char buf[1024];
    std::string json;
    json += "{\n  \"bench\": \"migrate\",\n";
    json += "  \"graph\": {\"generator\": \"barabasi-albert\", \"n\": " +
            std::to_string(host.num_vertices()) +
            ", \"edges\": " + std::to_string(host.num_edges()) +
            ", \"weights\": \"unit\"},\n";
    json += "  \"ranks\": " + std::to_string(config.num_ranks) +
            ",\n  \"shards_per_rank\": " +
            std::to_string(config.shards_per_rank) +
            ",\n  \"seed\": " + std::to_string(opt.seed) + ",\n";
    json += "  \"host_hardware_concurrency\": " + std::to_string(hw_threads) +
            ",\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"workload\": {\"batches\": %zu, \"batch_size\": %zu},\n"
                  "  \"migrate_max_shards\": %u,\n"
                  "  \"migrate_imbalance_threshold\": %.2f,\n",
                  opt.batches, opt.batch_size, config.migrate_max_shards,
                  config.migrate_imbalance_threshold);
    json += buf;
    json += "  \"note\": \"imbalance is max/mean of per-rank relaxation ops "
            "over the steady-state tail (last two batches; the planner is "
            "frozen at the tail boundary so no migration drain lands in the "
            "measured window) of rc.post + rc.ingest + rc.propagate spans; "
            "both modes start from the same manufactured hotspot (all of "
            "rank 1's shards piled onto rank 0). closeness_checksum is "
            "bit-exact and verified equal across both modes before this "
            "file is written\",\n";
    json += "  \"runs\": [\n";
    const ModeRun* runs[] = {&none, &autom};
    for (std::size_t i = 0; i < 2; ++i) {
        const ModeRun& r = *runs[i];
        std::snprintf(buf, sizeof(buf),
                      "    {\"mode\": \"%s\", \"imbalance\": %.4f, "
                      "\"shard_migrations\": %zu, \"migrated_rows\": %zu, "
                      "\"rc_steps\": %zu, \"closeness_checksum\": "
                      "\"%016llx\"}%s\n",
                      r.auto_migrate ? "auto" : "none", r.imbalance,
                      r.shard_migrations, r.migrated_rows, r.rc_steps,
                      static_cast<unsigned long long>(r.checksum),
                      i == 0 ? "," : "");
        json += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "  ],\n  \"excess_imbalance_reduction\": %.4f,\n"
                  "  \"enforced_bar\": \"reduction >= 0.25 and checksums "
                  "equal\"\n}\n",
                  reduction);
    json += buf;

    if (!opt.out.empty()) {
        std::FILE* f = std::fopen(opt.out.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot open %s\n", opt.out.c_str());
            return 1;
        }
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("wrote %s\n", opt.out.c_str());
    }
    return 0;
}
