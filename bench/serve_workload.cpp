// Serve-layer workload driver: concurrent point / batch / top-k closeness
// queries against a QueryService while the driver thread keeps the engine
// busy — RC steps with vertex-addition batches injected mid-convergence, the
// exact situation the anytime serving layer exists for.
//
// Three measurements run back to back:
//   * publication reduction — the identical engine schedule twice, once with
//     O(changed) delta publication + sharded read planes and once forced to
//     whole-snapshot publication. Every boundary's snapshot is compared
//     bit-for-bit across the two services (scores, reachable, changed list,
//     frac_unknown, top-k), and the delta path must cut published bytes by
//     at least 50% on this churny schedule. Both checks gate the run: any
//     divergence or a reduction below the bar fails the bench BEFORE the
//     JSON report is written.
//   * closed loop — every reader fires its next query the moment the previous
//     one returns (peak throughput / best-case latency); the default budget
//     is ten million queries so the multi-tenant serve path is measured at
//     production-like volume, not a few warm-cache microseconds.
//   * open loop — readers fire on a fixed arrival schedule regardless of
//     completion (latency at a controlled offered rate).
//
// Readers are spread over five tenants (default + four registered ones, one
// of them with a zero pending budget so its waiting queries always shed);
// a slice of the queries uses WaitForNextStep against those budgets, so
// per-tenant admission control is exercised, not just the stale fast path.
//
// The report (--out, default BENCH_serve.json, schema v2) carries per-shape
// latency percentiles, global and per-tenant staleness distributions, shed /
// SLO-miss counts per tenant, publication-path statistics (delta vs full,
// rows scanned, published bytes), incremental top-k patch/rebuild counters,
// the host's hardware concurrency, the service's own serve.* metrics
// registry, and the publication-overhead check (bare vs idle-service
// simulated clocks must agree — snapshot building is observer-only).
#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "core/strategies.hpp"
#include "graph/generators.hpp"
#include "serve/service.hpp"

namespace aa {
namespace {

struct BenchOptions {
    std::size_t vertices{1200};
    std::uint32_t ranks{8};
    std::size_t readers{6};
    std::size_t batches{3};
    std::size_t batch_size{40};
    std::size_t steps_between{2};
    std::size_t topk{10};
    std::size_t max_pending{2};
    /// Offered rate for the open-loop phase, queries/second across all
    /// readers.
    double open_qps{50000};
    /// The closed loop keeps the service open until this many queries have
    /// completed (the engine schedule itself finishes much earlier).
    std::size_t min_queries{10000000};
    /// Query budget of the open-loop phase (its duration is therefore
    /// roughly open_queries / open_qps seconds).
    std::size_t open_queries{250000};
    std::uint64_t seed{42};
    std::string out{"BENCH_serve.json"};
};

BenchOptions parse(int argc, char** argv) {
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", flag.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (flag == "--n") {
            opt.vertices = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--ranks") {
            opt.ranks = static_cast<std::uint32_t>(
                std::strtoul(next().c_str(), nullptr, 10));
        } else if (flag == "--readers") {
            opt.readers = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--batches") {
            opt.batches = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--batch-size") {
            opt.batch_size = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--steps-between") {
            opt.steps_between = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--topk") {
            opt.topk = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--max-pending") {
            opt.max_pending = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--open-qps") {
            opt.open_qps = std::strtod(next().c_str(), nullptr);
        } else if (flag == "--min-queries") {
            opt.min_queries = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--open-queries") {
            opt.open_queries = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--seed") {
            opt.seed = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--out") {
            opt.out = next();
        } else {
            std::fprintf(
                stderr,
                "usage: serve_workload [--n N] [--ranks P] [--readers R] "
                "[--batches B] [--batch-size K] [--steps-between S] "
                "[--topk K] [--max-pending Q] [--open-qps RATE] "
                "[--min-queries N] [--open-queries N] [--seed S] "
                "[--out PATH]\n");
            std::exit(2);
        }
    }
    if (opt.vertices == 0 || opt.ranks == 0 || opt.readers == 0 ||
        opt.open_qps <= 0) {
        std::fprintf(stderr, "--n, --ranks, --readers, --open-qps must be positive\n");
        std::exit(2);
    }
    return opt;
}

EngineConfig engine_config(const BenchOptions& opt) {
    EngineConfig config;
    config.num_ranks = opt.ranks;
    config.ia_threads = 1;
    config.seed = opt.seed;
    return config;
}

/// The fixed engine schedule every run of this bench executes: a few RC
/// steps, then a vertex-addition batch, repeated, then convergence.
void drive_engine(AnytimeEngine& engine, const BenchOptions& opt) {
    Rng batch_rng(opt.seed ^ 0x9E3779B97F4A7C15ull);
    RoundRobinPS strategy;
    for (std::size_t b = 0; b < opt.batches; ++b) {
        engine.run_rc_steps(opt.steps_between);
        GrowthConfig gc;
        gc.num_new = opt.batch_size;
        const auto batch = grow_batch(engine.num_vertices(), gc, batch_rng);
        engine.apply_addition(batch, strategy);
    }
    engine.run_to_quiescence();
}

/// The bench's tenant population: the default tenant plus four registered
/// ones with distinct admission budgets and freshness SLOs. `throttled` has
/// a zero pending budget — every one of its waiting queries is shed, which
/// pins the per-tenant isolation property at bench scale.
struct TenantSpec {
    const char* name;
    TenantConfig config;
};

std::vector<TenantSpec> tenant_specs() {
    return {
        {"interactive", {4, 0.05, 2.0}},
        {"dashboard", {16, 0.25, 1.0}},
        {"batch", {64, std::numeric_limits<double>::infinity(), 0.5}},
        {"throttled", {0, 0.02, 1.0}},
    };
}

struct ReaderStats {
    std::vector<double> lat_point;
    std::vector<double> lat_batch;
    std::vector<double> lat_topk;
    std::vector<double> stale_wall;
    std::vector<double> stale_versions;
    std::uint64_t ok{0};
    std::uint64_t shed{0};
    std::uint64_t unavailable{0};

    void merge(ReaderStats&& other) {
        const auto append = [](std::vector<double>& into, std::vector<double>& from) {
            into.insert(into.end(), from.begin(), from.end());
        };
        append(lat_point, other.lat_point);
        append(lat_batch, other.lat_batch);
        append(lat_topk, other.lat_topk);
        append(stale_wall, other.stale_wall);
        append(stale_versions, other.stale_versions);
        ok += other.ok;
        shed += other.shed;
        unavailable += other.unavailable;
    }

    std::uint64_t total() const { return ok + shed + unavailable; }
};

double percentile(std::vector<double>& samples, double p) {
    if (samples.empty()) {
        return 0;
    }
    std::sort(samples.begin(), samples.end());
    const double rank = p * static_cast<double>(samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

struct TenantResult {
    std::string name;
    TenantConfig config;
    ReaderStats stats;        // reader-side counts + sampled staleness
    TenantCounters counters;  // service-side served / shed / slo_misses
};

struct WorkloadResult {
    ReaderStats stats;
    std::vector<TenantResult> tenants;
    std::uint64_t publications{0};
    std::uint64_t shed_counter{0};
    std::size_t topk_patched{0};
    std::size_t topk_rebuilt{0};
    PublicationStats pub_stats;
    double sim_seconds{0};
    double wall_seconds{0};
    std::string metrics_json;
};

/// One full run: fresh engine + service with the five-tenant population,
/// concurrent readers in the requested load mode, the standard engine
/// schedule on the driver thread.
WorkloadResult run_workload(const BenchOptions& opt, bool open_loop) {
    Rng graph_rng(opt.seed);
    AnytimeEngine engine(barabasi_albert(opt.vertices, 2, graph_rng),
                         engine_config(opt));
    engine.initialize();
    ServeConfig sc;
    sc.topk_maintained = opt.topk;
    sc.max_pending = opt.max_pending;
    QueryService service(engine, sc);
    const std::vector<TenantSpec> specs = tenant_specs();
    std::vector<TenantId> tenant_ids{kDefaultTenant};
    for (const TenantSpec& spec : specs) {
        tenant_ids.push_back(service.register_tenant(spec.name, spec.config));
    }

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> completed{0};
    const std::uint64_t budget = open_loop ? opt.open_queries : opt.min_queries;
    // Queries stay within the initial vertex range so every query is valid
    // for every snapshot version; the added vertices show up in top-k.
    const std::size_t query_range = opt.vertices;
    const double interarrival =
        static_cast<double>(opt.readers) / opt.open_qps;

    std::vector<ReaderStats> per_reader(opt.readers);
    std::vector<std::thread> readers;
    readers.reserve(opt.readers);
    for (std::size_t t = 0; t < opt.readers; ++t) {
        readers.emplace_back([&, t] {
            using Clock = std::chrono::steady_clock;
            ReaderStats& stats = per_reader[t];
            const TenantId tenant = tenant_ids[t % tenant_ids.size()];
            Rng rng(opt.seed ^ (0xC0FFEEull + t));
            auto next_fire = Clock::now();
            std::uint64_t i = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                if (open_loop) {
                    std::this_thread::sleep_until(next_fire);
                    next_fire += std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(interarrival));
                }
                const VertexId v =
                    static_cast<VertexId>(rng.uniform(query_range));
                ResponseMeta meta;
                double latency = 0;
                const auto timed = [&](auto&& query) {
                    const auto t0 = Clock::now();
                    auto result = query();
                    latency =
                        std::chrono::duration<double>(Clock::now() - t0).count();
                    meta = result.meta;
                };
                // Mix: mostly stale point reads, some batch and top-k, and
                // every 16th query waits for the next step (the shape that
                // exercises the pending budget and per-tenant shedding).
                std::vector<double>* bucket = nullptr;
                switch (i % 16) {
                    case 3:
                    case 11: {
                        const std::vector<VertexId> vs{
                            v, static_cast<VertexId>((v + 17) % query_range),
                            static_cast<VertexId>((v + 101) % query_range),
                            static_cast<VertexId>((v + 331) % query_range)};
                        timed([&] {
                            return service.batch(vs, FreshnessPolicy::ServeStale,
                                                 tenant);
                        });
                        bucket = &stats.lat_batch;
                        break;
                    }
                    case 7:
                    case 15:
                        timed([&] {
                            return service.topk(opt.topk,
                                                FreshnessPolicy::ServeStale,
                                                tenant);
                        });
                        bucket = &stats.lat_topk;
                        break;
                    case 5:
                        timed([&] {
                            return service.point(
                                v, FreshnessPolicy::WaitForNextStep, tenant);
                        });
                        bucket = &stats.lat_point;
                        break;
                    default:
                        timed([&] {
                            return service.point(v, FreshnessPolicy::ServeStale,
                                                 tenant);
                        });
                        bucket = &stats.lat_point;
                        break;
                }
                ++i;
                // Counters are exact; sample vectors keep every 8th query so
                // a ten-million-query run stays within a few dozen MB.
                const bool sampled = (i & 7) == 0;
                switch (meta.status) {
                    case QueryStatus::Ok:
                        ++stats.ok;
                        if (sampled) {
                            bucket->push_back(latency);
                            stats.stale_wall.push_back(meta.staleness_wall);
                            stats.stale_versions.push_back(
                                static_cast<double>(meta.staleness_versions));
                        }
                        break;
                    case QueryStatus::Shed:
                        ++stats.shed;
                        break;
                    case QueryStatus::Unavailable:
                        ++stats.unavailable;
                        break;
                }
                completed.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    const auto wall0 = std::chrono::steady_clock::now();
    drive_engine(engine, opt);
    // The engine schedule may finish before the readers have produced a
    // meaningful sample; keep publishing (out of band, still versioned) until
    // the query budget is met, then close to wake any parked waiter.
    while (completed.load(std::memory_order_relaxed) < budget) {
        service.publish();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    stop.store(true, std::memory_order_relaxed);
    service.close();
    for (auto& thread : readers) {
        thread.join();
    }

    WorkloadResult result;
    result.tenants.resize(tenant_ids.size());
    for (std::size_t id = 0; id < tenant_ids.size(); ++id) {
        result.tenants[id].counters = service.tenant_counters(tenant_ids[id]);
        result.tenants[id].name = result.tenants[id].counters.name;
        result.tenants[id].config = result.tenants[id].counters.config;
    }
    for (std::size_t t = 0; t < per_reader.size(); ++t) {
        ReaderStats copy = per_reader[t];
        result.tenants[t % tenant_ids.size()].stats.merge(std::move(copy));
        result.stats.merge(std::move(per_reader[t]));
    }
    result.publications = service.publications();
    result.shed_counter = service.shed_count();
    result.topk_patched = service.topk_patched();
    result.topk_rebuilt = service.topk_rebuilt();
    result.pub_stats = service.publication_stats();
    result.sim_seconds = engine.sim_seconds();
    result.wall_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall0)
                              .count();
    result.metrics_json = metrics_to_json(service.metrics_copy(), 4);
    return result;
}

/// The same engine schedule with no readers: bare, and with an attached but
/// idle service (every boundary publishes, nobody queries). Their simulated
/// clocks must agree exactly — snapshot building is observer-only.
struct OverheadResult {
    double sim_bare{0};
    double sim_idle{0};
    double wall_bare{0};
    double wall_idle{0};
};

OverheadResult measure_overhead(const BenchOptions& opt) {
    OverheadResult result;
    {
        Rng graph_rng(opt.seed);
        AnytimeEngine engine(barabasi_albert(opt.vertices, 2, graph_rng),
                             engine_config(opt));
        const auto t0 = std::chrono::steady_clock::now();
        engine.initialize();
        drive_engine(engine, opt);
        result.wall_bare = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
        result.sim_bare = engine.sim_seconds();
    }
    {
        Rng graph_rng(opt.seed);
        AnytimeEngine engine(barabasi_albert(opt.vertices, 2, graph_rng),
                             engine_config(opt));
        const auto t0 = std::chrono::steady_clock::now();
        engine.initialize();
        QueryService service(engine);
        drive_engine(engine, opt);
        result.wall_idle = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
        result.sim_idle = engine.sim_seconds();
    }
    return result;
}

bool same_bits(double a, double b) {
    return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Full cross-check of two snapshots that must be bit-indistinguishable:
/// metadata, changed list, every score/reachable pair.
bool snapshots_identical(const ResultSnapshot& a, const ResultSnapshot& b) {
    if (a.version != b.version || a.rc_step != b.rc_step ||
        a.quiescent != b.quiescent ||
        a.total_reachable != b.total_reachable ||
        !same_bits(a.frac_unknown, b.frac_unknown) ||
        a.scores.size() != b.scores.size() || a.changed != b.changed) {
        return false;
    }
    for (std::size_t v = 0; v < a.scores.size(); ++v) {
        if (!same_bits(a.scores.closeness(v), b.scores.closeness(v)) ||
            a.scores.reachable(v) != b.scores.reachable(v)) {
            return false;
        }
    }
    return true;
}

/// Delta-vs-full publication comparison: the identical engine schedule on
/// two engines, one service publishing O(changed) deltas into sharded read
/// planes, the other forced to whole-snapshot publication with global reads.
/// Every boundary is compared bit-for-bit (plus the served top-k at each
/// addition boundary); the accumulated PublicationStats of the two services
/// quantify the work reduction.
struct ReductionResult {
    PublicationStats delta_stats;
    PublicationStats full_stats;
    bool bit_identical{true};
    std::uint64_t boundaries_compared{0};
};

ReductionResult measure_reduction(const BenchOptions& opt) {
    Rng rng_a(opt.seed);
    Rng rng_b(opt.seed);
    AnytimeEngine ea(barabasi_albert(opt.vertices, 2, rng_a),
                     engine_config(opt));
    AnytimeEngine eb(barabasi_albert(opt.vertices, 2, rng_b),
                     engine_config(opt));
    ea.initialize();
    eb.initialize();
    ServeConfig with_delta;
    with_delta.topk_maintained = opt.topk;
    with_delta.enable_metrics = false;
    ServeConfig full_only = with_delta;
    full_only.delta_publication = false;
    full_only.shard_reads = false;
    QueryService sa(ea, with_delta);
    QueryService sb(eb, full_only);

    ReductionResult result;
    const auto compare = [&] {
        const auto a = sa.point(0, FreshnessPolicy::ServeStale);
        const auto b = sb.point(0, FreshnessPolicy::ServeStale);
        if (a.meta.version != b.meta.version ||
            !same_bits(a.closeness, b.closeness) ||
            a.reachable != b.reachable) {
            result.bit_identical = false;
        }
        const auto ta = sa.topk(opt.topk, FreshnessPolicy::ServeStale);
        const auto tb = sb.topk(opt.topk, FreshnessPolicy::ServeStale);
        if (ta.entries.size() != tb.entries.size()) {
            result.bit_identical = false;
        } else {
            for (std::size_t i = 0; i < ta.entries.size(); ++i) {
                if (ta.entries[i].vertex != tb.entries[i].vertex ||
                    !same_bits(ta.entries[i].score, tb.entries[i].score)) {
                    result.bit_identical = false;
                }
            }
        }
        if (!snapshots_identical(*sa.snapshot(),
                                 *sb.snapshot())) {
            result.bit_identical = false;
        }
        ++result.boundaries_compared;
    };

    // Each engine boundary is followed by one out-of-band republication —
    // the serve loop's timer-driven publish (run_workload issues these every
    // millisecond once the schedule drains). That publish is where the two
    // paths diverge hardest: the delta ships only the rows that moved since
    // the boundary (usually none), the full path re-scans and re-materializes
    // all n rows every time.
    const auto republish = [&] {
        sa.publish();
        sb.publish();
        compare();
    };
    Rng batch_rng(opt.seed ^ 0x9E3779B97F4A7C15ull);
    RoundRobinPS strategy_a;
    RoundRobinPS strategy_b;
    for (std::size_t b = 0; b < opt.batches; ++b) {
        for (std::size_t s = 0; s < opt.steps_between; ++s) {
            ea.run_rc_steps(1);
            eb.run_rc_steps(1);
            compare();
            republish();
        }
        GrowthConfig gc;
        gc.num_new = opt.batch_size;
        const auto batch = grow_batch(ea.num_vertices(), gc, batch_rng);
        ea.apply_addition(batch, strategy_a);
        eb.apply_addition(batch, strategy_b);
        compare();
        republish();
    }
    while (ea.run_rc_steps(1) > 0) {
        eb.run_rc_steps(1);
        compare();
        republish();
    }
    eb.run_to_quiescence();  // no-op when the schedules agree
    compare();
    result.delta_stats = sa.publication_stats();
    result.full_stats = sb.publication_stats();
    return result;
}

std::string shape_json(const char* name, std::vector<double>& samples) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"shape\": \"%s\", \"count\": %zu, \"p50\": %.3e, "
                  "\"p90\": %.3e, \"p99\": %.3e, \"max\": %.3e}",
                  name, samples.size(), percentile(samples, 0.50),
                  percentile(samples, 0.90), percentile(samples, 0.99),
                  samples.empty() ? 0.0
                                  : *std::max_element(samples.begin(),
                                                      samples.end()));
    return buf;
}

std::string publication_stats_json(const PublicationStats& s) {
    char buf[384];
    std::snprintf(
        buf, sizeof(buf),
        "{\"publications\": %llu, \"delta\": %llu, \"full\": %llu, "
        "\"changed_rows\": %zu, \"rows_scanned\": %zu, "
        "\"chunks_copied\": %zu, \"chunks_shared\": %zu, "
        "\"published_bytes\": %zu}",
        static_cast<unsigned long long>(s.publications),
        static_cast<unsigned long long>(s.delta_publications),
        static_cast<unsigned long long>(s.full_publications), s.changed_rows,
        s.rows_scanned, s.chunks_copied, s.chunks_shared, s.published_bytes);
    return buf;
}

std::string tenant_json(TenantResult& t) {
    std::string json = "       {\"name\": \"" + t.name + "\", ";
    char buf[384];
    char slo[32];
    if (t.config.freshness_slo == std::numeric_limits<double>::infinity()) {
        std::snprintf(slo, sizeof(slo), "\"inf\"");
    } else {
        std::snprintf(slo, sizeof(slo), "%.4g", t.config.freshness_slo);
    }
    std::snprintf(
        buf, sizeof(buf),
        "\"max_pending\": %zu, \"freshness_slo\": %s, "
        "\"demand_weight\": %.3g,\n        \"ok\": %llu, \"shed\": %llu, "
        "\"unavailable\": %llu, \"served\": %llu, \"slo_misses\": %llu,\n",
        t.config.max_pending, slo, t.config.demand_weight,
        static_cast<unsigned long long>(t.stats.ok),
        static_cast<unsigned long long>(t.stats.shed),
        static_cast<unsigned long long>(t.stats.unavailable),
        static_cast<unsigned long long>(t.counters.served),
        static_cast<unsigned long long>(t.counters.slo_misses));
    json += buf;
    json += "        \"staleness_wall_seconds\": " +
            shape_json("wall", t.stats.stale_wall) + "}";
    return json;
}

std::string workload_json(const char* mode, WorkloadResult& r) {
    std::string json;
    json += "    {\"mode\": \"" + std::string(mode) + "\",\n";
    json += "     \"queries\": {\"ok\": " + std::to_string(r.stats.ok) +
            ", \"shed\": " + std::to_string(r.stats.shed) +
            ", \"unavailable\": " + std::to_string(r.stats.unavailable) + "},\n";
    json += "     \"latency_seconds\": [\n       " +
            shape_json("point", r.stats.lat_point) + ",\n       " +
            shape_json("batch", r.stats.lat_batch) + ",\n       " +
            shape_json("topk", r.stats.lat_topk) + "\n     ],\n";
    json += "     \"staleness\": {\"wall_seconds\": " +
            shape_json("wall", r.stats.stale_wall) +
            ",\n                   \"versions_behind\": " +
            shape_json("versions", r.stats.stale_versions) + "},\n";
    json += "     \"per_tenant\": [\n";
    for (std::size_t i = 0; i < r.tenants.size(); ++i) {
        json += tenant_json(r.tenants[i]);
        json += i + 1 < r.tenants.size() ? ",\n" : "\n";
    }
    json += "     ],\n";
    json += "     \"publication\": " + publication_stats_json(r.pub_stats) +
            ",\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "     \"publications\": %llu, \"shed_count\": %llu, "
                  "\"topk_patched\": %zu, \"topk_rebuilt\": %zu,\n"
                  "     \"sim_seconds\": %.6f, \"wall_seconds\": %.3f,\n",
                  static_cast<unsigned long long>(r.publications),
                  static_cast<unsigned long long>(r.shed_counter),
                  r.topk_patched, r.topk_rebuilt, r.sim_seconds,
                  r.wall_seconds);
    json += buf;
    json += "     \"serve_metrics\": " + r.metrics_json + "}";
    return json;
}

}  // namespace
}  // namespace aa

int main(int argc, char** argv) {
    using namespace aa;
    const BenchOptions opt = parse(argc, argv);
    std::printf(
        "serve workload: n=%zu ranks=%u readers=%zu batches=%zu x %zu "
        "min-queries=%zu\n",
        opt.vertices, opt.ranks, opt.readers, opt.batches, opt.batch_size,
        opt.min_queries);

    std::printf("-- publication overhead (no readers)...\n");
    const OverheadResult overhead = measure_overhead(opt);
    const double sim_delta =
        overhead.sim_bare > 0
            ? std::abs(overhead.sim_idle - overhead.sim_bare) / overhead.sim_bare
            : 0.0;
    std::printf(
        "   sim seconds bare %.6f / idle-service %.6f (delta %.4f%%)\n"
        "   wall seconds bare %.3f / idle-service %.3f\n",
        overhead.sim_bare, overhead.sim_idle, sim_delta * 100.0,
        overhead.wall_bare, overhead.wall_idle);
    if (sim_delta > 0.05) {
        std::fprintf(stderr,
                     "FAIL: publication changed the simulated clock by more "
                     "than 5%% — snapshots must be observer-only\n");
        return 1;
    }

    // Delta-vs-full gate: the report is only written if the O(changed) path
    // is bit-indistinguishable from whole-snapshot publication AND cuts the
    // published bytes by at least half on this churny schedule.
    std::printf("-- delta vs full publication (bit-identity + reduction)...\n");
    const ReductionResult reduction = measure_reduction(opt);
    const double bytes_reduction =
        reduction.full_stats.published_bytes > 0
            ? 1.0 - static_cast<double>(reduction.delta_stats.published_bytes) /
                        static_cast<double>(reduction.full_stats.published_bytes)
            : 0.0;
    const double rows_reduction =
        reduction.full_stats.rows_scanned > 0
            ? 1.0 - static_cast<double>(reduction.delta_stats.rows_scanned) /
                        static_cast<double>(reduction.full_stats.rows_scanned)
            : 0.0;
    std::printf(
        "   %llu boundaries compared, %llu delta / %llu full publications\n"
        "   published bytes %zu (delta) vs %zu (full): %.1f%% reduction\n"
        "   rows scanned %zu (delta) vs %zu (full): %.1f%% reduction\n",
        static_cast<unsigned long long>(reduction.boundaries_compared),
        static_cast<unsigned long long>(reduction.delta_stats.delta_publications),
        static_cast<unsigned long long>(reduction.full_stats.full_publications),
        reduction.delta_stats.published_bytes,
        reduction.full_stats.published_bytes, bytes_reduction * 100.0,
        reduction.delta_stats.rows_scanned, reduction.full_stats.rows_scanned,
        rows_reduction * 100.0);
    if (!reduction.bit_identical) {
        std::fprintf(stderr,
                     "FAIL: delta-published snapshots diverged from the "
                     "full-snapshot path — results must be bit-identical\n");
        return 1;
    }
    if (reduction.delta_stats.delta_publications == 0) {
        std::fprintf(stderr,
                     "FAIL: the delta path never engaged on the churny "
                     "schedule\n");
        return 1;
    }
    if (bytes_reduction < 0.5) {
        std::fprintf(stderr,
                     "FAIL: published bytes dropped only %.1f%% vs "
                     "whole-snapshot publication (bar: >= 50%%)\n",
                     bytes_reduction * 100.0);
        return 1;
    }

    std::string json;
    json += "{\n  \"bench\": \"serve_workload\",\n  \"schema\": 2,\n";
    json += "  \"config\": {\"n\": " + std::to_string(opt.vertices) +
            ", \"ranks\": " + std::to_string(opt.ranks) +
            ", \"readers\": " + std::to_string(opt.readers) +
            ", \"batches\": " + std::to_string(opt.batches) +
            ", \"batch_size\": " + std::to_string(opt.batch_size) +
            ", \"topk\": " + std::to_string(opt.topk) +
            ", \"max_pending\": " + std::to_string(opt.max_pending) +
            ", \"open_qps\": " + std::to_string(opt.open_qps) +
            ", \"min_queries\": " + std::to_string(opt.min_queries) +
            ", \"open_queries\": " + std::to_string(opt.open_queries) +
            ", \"seed\": " + std::to_string(opt.seed) +
            ",\n             \"host_hardware_concurrency\": " +
            std::to_string(std::thread::hardware_concurrency()) + "},\n";
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "  \"publication_overhead\": {\"sim_seconds_bare\": %.6f, "
                  "\"sim_seconds_idle_service\": %.6f, \"sim_delta_frac\": "
                  "%.6f, \"wall_seconds_bare\": %.3f, "
                  "\"wall_seconds_idle_service\": %.3f},\n",
                  overhead.sim_bare, overhead.sim_idle, sim_delta,
                  overhead.wall_bare, overhead.wall_idle);
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"publication_reduction\": {\"boundaries_compared\": %llu, "
                  "\"bit_identical\": true,\n    \"published_bytes_reduction\": "
                  "%.4f, \"rows_scanned_reduction\": %.4f,\n    \"delta\": ",
                  static_cast<unsigned long long>(reduction.boundaries_compared),
                  bytes_reduction, rows_reduction);
    json += buf;
    json += publication_stats_json(reduction.delta_stats);
    json += ",\n    \"full\": " + publication_stats_json(reduction.full_stats) +
            "},\n";
    json += "  \"workloads\": [\n";

    for (const bool open_loop : {false, true}) {
        const char* mode = open_loop ? "open" : "closed";
        std::printf("-- %s-loop workload...\n", mode);
        WorkloadResult result = run_workload(opt, open_loop);
        std::vector<double> p50_copy = result.stats.lat_point;
        std::printf(
            "   %llu ok / %llu shed / %llu unavailable, %llu publications "
            "(%llu delta), point p50 %.2e s, topk patched %zu rebuilt %zu\n",
            static_cast<unsigned long long>(result.stats.ok),
            static_cast<unsigned long long>(result.stats.shed),
            static_cast<unsigned long long>(result.stats.unavailable),
            static_cast<unsigned long long>(result.publications),
            static_cast<unsigned long long>(
                result.pub_stats.delta_publications),
            percentile(p50_copy, 0.50), result.topk_patched,
            result.topk_rebuilt);
        json += workload_json(mode, result);
        json += open_loop ? "\n" : ",\n";
    }
    json += "  ]\n}\n";

    if (!opt.out.empty()) {
        std::FILE* f = std::fopen(opt.out.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot open %s\n", opt.out.c_str());
            return 1;
        }
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("wrote %s\n", opt.out.c_str());
    }
    return 0;
}
