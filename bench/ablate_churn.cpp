// Churn ablation: the Figure-4 restart-vs-anytime comparison re-measured for
// *fully-dynamic* updates — batches that delete edges, add edges between
// existing vertices and reweight edges (increases through the
// invalidate/re-settle cascade, decreases through the growth broadcast).
//
// Protocol per churn size k: converge a from-scratch engine on the host,
// then apply one batch of k deletions + k additions + k/2 reweights and
// reconverge. The anytime cost is the simulated time of that delta
// (apply_deletion + add_edges + run_to_quiescence); the restart cost is a
// full from-scratch run on the final graph — what a static pipeline pays to
// incorporate the same change.
//
// The acceptance bar rides along as an enforced cross-check: both engines
// must land on bit-identical closeness (the host is uniform-weight and the
// reweights are dyadic, so every converged quantity is exact). The bench
// exits nonzero on any checksum mismatch, so the recorded BENCH_churn.json
// can only exist for a correct build.
//
// Emits a JSON report (--out, default BENCH_churn.json) recorded in the
// repository root; build with the `bench` preset (-O3) for quotable numbers.
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/baseline.hpp"
#include "core/closeness.hpp"
#include "core/edge_delete.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"

namespace aa {
namespace {

struct BenchOptions {
    std::size_t vertices{800};
    std::size_t edge_factor{3};
    std::uint64_t seed{42};
    std::vector<std::size_t> sizes{8, 32, 128};
    std::string out{"BENCH_churn.json"};
};

BenchOptions parse(int argc, char** argv) {
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", flag.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (flag == "--n") {
            opt.vertices = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--seed") {
            opt.seed = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--out") {
            opt.out = next();
        } else {
            std::fprintf(stderr,
                         "usage: ablate_churn [--n N] [--seed S] [--out PATH]\n");
            std::exit(2);
        }
    }
    return opt;
}

/// One churn batch: k deletions, k additions (between existing vertices),
/// k/2 reweights, all derived deterministically from the host graph.
struct ChurnBatch {
    ShrinkBatch shrink;
    std::vector<Edge> additions;
};

ChurnBatch make_churn(const DynamicGraph& g, std::size_t k,
                      std::uint64_t seed) {
    ChurnBatch churn;
    // Deletions and reweights: disjoint strided picks over the edge list, so
    // different churn sizes hit overlapping but growing regions of the graph.
    std::size_t index = 0;
    for (const Edge& e : g.edges()) {
        if (churn.shrink.deletions.size() < k) {
            if (index % 3 == 0) {
                churn.shrink.deletions.push_back(e);
            }
        } else if (churn.shrink.reweights.size() < k / 2) {
            if (index % 3 == 1) {
                // Alternate a dyadic increase (cascade path) and a dyadic
                // decrease (growth broadcast path).
                Edge r = e;
                r.weight = churn.shrink.reweights.size() % 2 == 0 ? 2.0 : 0.5;
                churn.shrink.reweights.push_back(r);
            }
        } else {
            break;
        }
        ++index;
    }
    // Additions: unit-weight edges between distinct existing vertices that
    // are not currently adjacent (so the mirror semantics are unambiguous).
    Rng rng(seed * 17 + k);
    while (churn.additions.size() < k) {
        const auto u = static_cast<VertexId>(rng.uniform(g.num_vertices()));
        const auto v = static_cast<VertexId>(rng.uniform(g.num_vertices()));
        if (u == v || g.edge_weight(u, v) < kInfinity) {
            continue;
        }
        bool duplicate = false;
        for (const Edge& e : churn.additions) {
            if ((e.u == u && e.v == v) || (e.u == v && e.v == u)) {
                duplicate = true;
                break;
            }
        }
        if (!duplicate) {
            churn.additions.push_back({u, v, 1.0});
        }
    }
    return churn;
}

DynamicGraph apply_churn(const DynamicGraph& g, const ChurnBatch& churn) {
    DynamicGraph out = g;
    for (const Edge& e : churn.shrink.deletions) {
        out.remove_edge(e.u, e.v);
    }
    for (const Edge& e : churn.shrink.reweights) {
        if (out.edge_weight(e.u, e.v) < kInfinity) {
            out.set_edge_weight(e.u, e.v, e.weight);
        }
    }
    for (const Edge& e : churn.additions) {
        out.add_edge(e.u, e.v, e.weight);
    }
    return out;
}

/// Order-independent bit-exact digest of a closeness result.
std::uint64_t closeness_checksum(const ClosenessScores& scores) {
    std::uint64_t sum = 0;
    for (std::size_t v = 0; v < scores.closeness.size(); ++v) {
        const std::uint64_t bits =
            std::bit_cast<std::uint64_t>(scores.closeness[v]);
        sum += (bits ^ (v * 0x9E3779B97F4A7C15ull)) +
               scores.reachable[v];
    }
    return sum;
}

}  // namespace
}  // namespace aa

int main(int argc, char** argv) {
    using namespace aa;
    const BenchOptions opt = parse(argc, argv);

    EngineConfig config;
    config.num_ranks = 16;
    config.ia_threads = 4;
    config.seed = opt.seed;

    Rng graph_rng(opt.seed);
    const DynamicGraph host =
        barabasi_albert(opt.vertices, opt.edge_factor, graph_rng);
    std::printf("churn ablation: n=%zu edges=%zu ranks=%u\n",
                host.num_vertices(), host.num_edges(), config.num_ranks);

    struct Row {
        std::size_t k;
        ShrinkReport report;
        double anytime_delta;
        double restart_seconds;
        std::uint64_t checksum;
    };
    std::vector<Row> rows;

    for (const std::size_t k : opt.sizes) {
        const ChurnBatch churn = make_churn(host, k, opt.seed);
        const DynamicGraph final_graph = apply_churn(host, churn);

        // Anytime: converge on the host, then pay only for the delta.
        AnytimeEngine engine(host, config);
        engine.initialize();
        engine.run_to_quiescence();
        const double before = engine.sim_seconds();
        const ShrinkReport report = engine.apply_deletion(churn.shrink);
        engine.add_edges(churn.additions);
        engine.run_to_quiescence();
        const double anytime_delta = engine.sim_seconds() - before;

        // Restart: a full static recomputation of the final graph.
        AnytimeEngine fresh(final_graph, config);
        fresh.initialize();
        fresh.run_to_quiescence();
        const double restart_seconds = fresh.sim_seconds();

        // Enforced cross-check: the anytime engine must land exactly where
        // the from-scratch engine does.
        const std::uint64_t got = closeness_checksum(engine.closeness());
        const std::uint64_t want = closeness_checksum(fresh.closeness());
        if (got != want) {
            std::fprintf(stderr,
                         "CHURN MISMATCH at k=%zu: anytime closeness checksum "
                         "%016llx != restart %016llx\n",
                         k, static_cast<unsigned long long>(got),
                         static_cast<unsigned long long>(want));
            return 1;
        }

        std::printf("   k=%4zu  -%zu edges +%zu edges ~%zu reweights  "
                    "invalidated %zu in %zu rounds  anytime %8.4fs  "
                    "restart %8.4fs  %.1fx\n",
                    k, churn.shrink.deletions.size(), churn.additions.size(),
                    churn.shrink.reweights.size(), report.invalidated_entries,
                    report.cascade_rounds, anytime_delta, restart_seconds,
                    restart_seconds / std::max(anytime_delta, 1e-12));
        rows.push_back({k, report, anytime_delta, restart_seconds, got});
    }

    std::string json;
    json += "{\n  \"bench\": \"churn\",\n";
    json += "  \"graph\": {\"generator\": \"barabasi-albert\", \"n\": " +
            std::to_string(host.num_vertices()) +
            ", \"edges\": " + std::to_string(host.num_edges()) + "},\n";
    json += "  \"ranks\": " + std::to_string(config.num_ranks) +
            ",\n  \"seed\": " + std::to_string(opt.seed) + ",\n";
    json += "  \"note\": \"anytime_delta_s is the simulated cost of "
            "apply_deletion + add_edges + reconvergence on a converged "
            "engine; restart_s is a from-scratch run on the final graph. "
            "closeness_checksum is bit-exact and verified equal between "
            "both engines before this file is written\",\n";
    json += "  \"runs\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"churn_size\": %zu, \"deletions\": %zu, \"additions\": %zu, "
            "\"reweights\": %zu,\n     \"seed_suspects\": %zu, "
            "\"invalidated_entries\": %zu, \"cascade_rounds\": %zu,\n"
            "     \"anytime_delta_s\": %.9f, \"restart_s\": %.9f, "
            "\"speedup\": %.2f, \"closeness_checksum\": \"%016llx\"}%s\n",
            r.k, r.k, r.k, r.k / 2, r.report.seed_suspects,
            r.report.invalidated_entries, r.report.cascade_rounds,
            r.anytime_delta, r.restart_seconds,
            r.restart_seconds / std::max(r.anytime_delta, 1e-12),
            static_cast<unsigned long long>(r.checksum),
            i + 1 < rows.size() ? "," : "");
        json += buf;
    }
    json += "  ]\n}\n";

    if (!opt.out.empty()) {
        std::FILE* f = std::fopen(opt.out.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot open %s\n", opt.out.c_str());
            return 1;
        }
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("wrote %s\n", opt.out.c_str());
    }
    return 0;
}
