// Ablation C: the paper's communication schedule (§IV.C). The personalized
// all-to-all serializes transmissions so "only one message traverses the
// network at any given time", trading latency for predictability and no
// flooding. This harness runs the same static computation under the three
// schedule models and reports total simulated time and the comm share.
#include <cstdio>

#include "core/engine.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
    using namespace aa;
    using namespace aa::bench;

    const Options options = parse_options(
        argc, argv, "ablation: RC communication schedule models");
    const DynamicGraph host = make_host_graph(options);

    std::printf("Ablation C: communication schedule, %zu-vertex graph, %u ranks\n\n",
                host.num_vertices(), options.ranks);

    JsonReport report = make_report("ablate_comm_schedule", options);
    Table table({"schedule", "total_s", "comm_s", "comm_share", "rc_steps"});
    const std::pair<CommSchedule, const char*> schedules[] = {
        {CommSchedule::SerializedAllToAll, "serialized_all_to_all"},
        {CommSchedule::ParallelRounds, "parallel_rounds"},
        {CommSchedule::Flooding, "flooding"},
    };
    for (const auto& [schedule, name] : schedules) {
        EngineConfig config = engine_config(options);
        config.schedule = schedule;
        AnytimeEngine engine(host, config);
        engine.initialize();
        const std::size_t steps = engine.run_to_quiescence();
        report.add_timeline(name, engine);
        const double total = engine.sim_seconds();
        const double comm = engine.cluster().stats().comm_seconds;
        table.add_row({name, fmt_seconds(total), fmt_seconds(comm),
                       fmt_double(comm / total, 3), std::to_string(steps)});
    }
    table.print();
    table.write_csv(options.csv);
    report.set_table(table);
    report.write();
    return 0;
}
