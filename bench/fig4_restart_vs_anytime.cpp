// Figure 4 reproduction: baseline restart vs anytime-anywhere
// (RoundRobin-PS) for a ~1% vertex-addition batch (the paper's 512 of
// 50,000) injected at RC steps 0, 4 and 8 on 16 processors.
//
// Reported quantity: the cost attributable to handling the change —
//   * anytime:  (time of the full run with the change incorporated in
//                flight) minus (time of the undisturbed static run),
//   * restart:  everything spent after the change arrives, i.e. the work
//               discarded at the injection point plus a full from-scratch
//               recomputation of the grown graph.
// This matches the paper's bars, whose anytime values sit far below even a
// single static analysis. Raw end-to-end times are printed alongside.
//
// Expected shape (paper §V.B.1): the anytime-anywhere cost is a small, flat
// fraction of the restart cost at every injection step, and the restart cost
// grows with the injection step (more discarded work).
#include <cstdio>

#include "core/baseline.hpp"
#include "core/strategies.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
    using namespace aa;
    using namespace aa::bench;

    const Options options = parse_options(
        argc, argv,
        "fig4: baseline restart vs anytime anywhere (RoundRobin-PS), 1% batch");
    const EngineConfig config = engine_config(options);
    const DynamicGraph host = make_host_graph(options);
    const std::size_t batch_size = std::max<std::size_t>(
        8, static_cast<std::size_t>(0.01024 * static_cast<double>(host.num_vertices())));

    std::printf("Figure 4: %zu vertex additions on a %zu-vertex scale-free graph, "
                "%u ranks\n\n",
                batch_size, host.num_vertices(), options.ranks);

    // The undisturbed static analysis, as the anytime baseline to subtract.
    const StaticRun undisturbed = static_run(host, config);
    JsonReport report = make_report("fig4_restart_vs_anytime", options);

    // For the restart policy, change-attributable and end-to-end coincide:
    // wasted progress + full recomputation is both the cost of the change
    // and the total time from analysis start to final result.
    Table table({"inject_step", "anytime_change_s", "restart_s", "speedup",
                 "anytime_total_s"});
    for (const std::size_t inject_step : {0u, 4u, 8u}) {
        const GrowthBatch batch =
            make_batch(host.num_vertices(), batch_size, options.seed + inject_step);

        // Anytime anywhere: reuse partial results, apply the batch in-flight.
        AnytimeEngine engine(host, config);
        engine.initialize();
        engine.run_rc_steps(inject_step);
        RoundRobinPS strategy;
        engine.apply_addition(batch, strategy);
        engine.run_to_quiescence();
        report.add_timeline("anytime@RC" + std::to_string(inject_step), engine);
        const double anytime_total = engine.sim_seconds();
        const double anytime_change =
            std::max(0.0, anytime_total - undisturbed.sim_seconds);

        // Baseline: progress until the change, then recompute from scratch.
        const RestartRun restart =
            baseline_restart(host, batch, inject_step, config);

        table.add_row(
            {"RC" + std::to_string(inject_step), fmt_seconds(anytime_change),
             fmt_seconds(restart.total_seconds()),
             fmt_double(restart.total_seconds() / std::max(anytime_change, 1e-12),
                        1) +
                 "x",
             fmt_seconds(anytime_total)});
    }
    table.print();
    table.write_csv(options.csv);
    report.set_table(table);
    report.write();
    return 0;
}
