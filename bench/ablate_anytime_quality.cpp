// Ablation D: the anytime property. Interrupt the analysis after every RC
// step and measure solution quality against the exact APSP — the fraction of
// exact entries and the closeness error must improve monotonically (paper
// §I/§III: "monotonically non-decreasing" solution quality), including
// across a mid-run vertex addition.
#include <cstdio>

#include "core/closeness.hpp"
#include "core/quality.hpp"
#include "core/strategies.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
    using namespace aa;
    using namespace aa::bench;

    Options options = parse_options(
        argc, argv, "ablation: anytime quality per RC step");
    // Quality evaluation needs an exact APSP per step: keep this one small.
    options.vertices = std::min<std::size_t>(options.vertices, 600);

    const EngineConfig config = engine_config(options);
    const DynamicGraph host = make_host_graph(options);
    const std::size_t batch_size = host.num_vertices() / 25;
    const GrowthBatch batch =
        make_batch(host.num_vertices(), batch_size, options.seed + 1);

    DynamicGraph grown = host;
    grown.add_vertices(batch.num_new);
    for (const Edge& e : batch.edges) {
        grown.add_edge(e.u, e.v, e.weight);
    }
    const auto exact = exact_apsp(grown);

    std::printf("Ablation D: anytime quality per RC step, %zu-vertex graph "
                "(+%zu at RC2), %u ranks\n\n",
                host.num_vertices(), batch.num_new, options.ranks);

    AnytimeEngine engine(host, config);
    engine.initialize();

    Table table({"event", "sim_s", "frac_exact", "frac_unknown",
                 "closeness_rel_err"});
    const auto snapshot = [&](const std::string& label) {
        // Pad the partial matrix to the final size so quality is always
        // measured against the final graph.
        auto matrix = engine.full_distance_matrix();
        const std::size_t n = exact.size();
        for (auto& row : matrix) {
            row.resize(n, kInfinity);
        }
        while (matrix.size() < n) {
            std::vector<Weight> row(n, kInfinity);
            row[matrix.size()] = 0;
            matrix.push_back(std::move(row));
        }
        const auto q = evaluate_quality(matrix, exact);
        table.add_row({label, fmt_seconds(engine.sim_seconds()),
                       fmt_double(q.frac_exact, 4), fmt_double(q.frac_unknown, 4),
                       fmt_double(q.closeness_mean_rel_error, 4)});
    };

    snapshot("after IA");
    std::size_t step = 0;
    while (step < 2 && engine.rc_step()) {
        snapshot("RC" + std::to_string(++step));
    }
    RoundRobinPS strategy;
    engine.apply_addition(batch, strategy);
    snapshot("after +batch");
    while (engine.rc_step()) {
        snapshot("RC" + std::to_string(++step));
    }
    table.print();
    table.write_csv(options.csv);
    JsonReport report = make_report("ablate_anytime_quality", options);
    report.add_timeline("anytime_quality", engine);
    report.set_table(table);
    report.write();
    return 0;
}
