// Figure 7 reproduction: number of NEW cut-edges created by each strategy as
// a function of the batch size (same batches as Figures 5/6).
//
// Expected shape (paper §V.B.2): RoundRobin-PS creates the most new
// cut-edges (it scatters each community across all ranks); CutEdge-PS
// noticeably fewer (it keeps batch communities together and anchors them to
// affine ranks); Repartition-S the fewest (it may even lower the total cut
// by repartitioning the old vertices too). The gaps grow with the batch.
#include <cstdio>

#include "core/strategies.hpp"
#include "harness.hpp"

namespace {

/// New cut-edges introduced by applying `batch` with `strategy` right after
/// static convergence (counted as the change in total cut, floored at 0 —
/// Repartition-S can make the total cut smaller than before the batch).
long long new_cut_edges(const aa::DynamicGraph& host, const aa::EngineConfig& config,
                        const aa::GrowthBatch& batch,
                        aa::VertexAdditionStrategy& strategy,
                        aa::bench::JsonReport* report = nullptr,
                        const std::string& label = "") {
    aa::AnytimeEngine engine(host, config);
    engine.initialize();
    engine.run_to_quiescence();
    const auto before = static_cast<long long>(engine.current_cut_edges());
    engine.apply_addition(batch, strategy);
    if (report != nullptr) {
        // The "add" span in the timeline carries new_cut_edges itself.
        report->add_timeline(label, engine);
    }
    return static_cast<long long>(engine.current_cut_edges()) - before;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace aa;
    using namespace aa::bench;

    const Options options =
        parse_options(argc, argv, "fig7: new cut-edges per strategy");
    const EngineConfig config = engine_config(options);
    const DynamicGraph host = make_host_graph(options);

    std::printf("Figure 7: new cut-edges on a %zu-vertex graph, %u ranks\n"
                "(negative = repartitioning lowered the total cut)\n\n",
                host.num_vertices(), options.ranks);

    JsonReport report = make_report("fig7_new_cut_edges", options);
    const auto batch_sizes = figure5_batch_sizes(options);
    Table table({"batch", "repartition_s", "cutedge_ps", "roundrobin_ps"});
    for (const std::size_t batch_size : batch_sizes) {
        const GrowthBatch batch =
            make_batch(host.num_vertices(), batch_size, options.seed + batch_size);
        RepartitionS repartition;
        CutEdgePS cut_edge(options.seed * 3 + 1);
        RoundRobinPS round_robin;
        JsonReport* rp = batch_size == batch_sizes.back() ? &report : nullptr;
        const std::string tag = "@" + std::to_string(batch_size);
        table.add_row(
            {std::to_string(batch_size),
             std::to_string(new_cut_edges(host, config, batch, repartition, rp,
                                          "repartition" + tag)),
             std::to_string(new_cut_edges(host, config, batch, cut_edge, rp,
                                          "cutedge_ps" + tag)),
             std::to_string(new_cut_edges(host, config, batch, round_robin, rp,
                                          "roundrobin_ps" + tag))});
    }
    table.print();
    table.write_csv(options.csv);
    report.set_table(table);
    report.write();
    return 0;
}
