// Refinement ablation (Ablation J): does heat-steered RC scheduling get the
// rows users actually query to exactness sooner, without changing what the
// engine converges to?
//
// Protocol: a unit-weight Barabási–Albert host and a Zipf-skewed query trace
// (a handful of vertices soak up most of the query mass, the classic serving
// skew). Two engines run the identical budgeted RC schedule envelope —
// refine_budget_ops caps the per-rank propagate work each step, so a step
// costs the same under either policy — one with RefinePolicy::Uniform, one
// with RefinePolicy::QueryHeat fed by the trace. After every step each row is
// compared bitwise against a fully-converged twin (unit weights make the
// converged fixpoint schedule-independent down to the bits), recording the
// first step at which the row is exact. The headline metric is the
// query-weighted mean of those steps: how long the trace's query mass waits
// for exact answers under each policy.
//
// Two bars are enforced before the report is written, so BENCH_refine.json
// can only exist for a correct build:
//   - both policies (and the unbudgeted twin) land on bit-identical converged
//     closeness (checksum cross-check — steering must never change answers);
//   - QueryHeat reaches query-weighted exactness in >= 2x fewer RC steps than
//     Uniform (the exit-nonzero acceptance bar for this PR).
//
// Emits a JSON report (--out, default BENCH_refine.json) recorded in the
// repository root; build with the `bench` preset (-O3) for quotable numbers.
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/closeness.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "refine/planner.hpp"

namespace aa {
namespace {

struct BenchOptions {
    std::size_t vertices{800};
    std::size_t edge_factor{3};
    std::uint64_t seed{42};
    double budget_ops{1000};
    double zipf_s{2.0};
    std::size_t queries{64};
    std::string out{"BENCH_refine.json"};
};

BenchOptions parse(int argc, char** argv) {
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", flag.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (flag == "--n") {
            opt.vertices = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--seed") {
            opt.seed = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--budget") {
            opt.budget_ops = std::strtod(next().c_str(), nullptr);
        } else if (flag == "--zipf") {
            opt.zipf_s = std::strtod(next().c_str(), nullptr);
        } else if (flag == "--queries") {
            opt.queries = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--out") {
            opt.out = next();
        } else {
            std::fprintf(stderr,
                         "usage: ablate_refine [--n N] [--seed S] [--budget OPS] "
                         "[--zipf S] [--queries Q] [--out PATH]\n");
            std::exit(2);
        }
    }
    return opt;
}

/// Zipf(s) over a seeded permutation of the vertex set: query q lands on the
/// r-th hottest vertex with probability proportional to 1/r^s. The permutation
/// decouples query heat from the BA hub structure, so the ablation measures
/// steering, not a lucky alignment of popularity with degree.
std::vector<VertexId> zipf_trace(std::size_t n, std::size_t queries, double s,
                                 Rng& rng) {
    std::vector<VertexId> order(n);
    for (std::size_t v = 0; v < n; ++v) {
        order[v] = static_cast<VertexId>(v);
    }
    rng.shuffle(order);
    std::vector<double> cdf(n);
    double total = 0;
    for (std::size_t r = 0; r < n; ++r) {
        total += 1.0 / std::pow(static_cast<double>(r + 1), s);
        cdf[r] = total;
    }
    std::vector<VertexId> trace;
    trace.reserve(queries);
    for (std::size_t q = 0; q < queries; ++q) {
        const double u = rng.uniform01() * total;
        const std::size_t r = static_cast<std::size_t>(
            std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
        trace.push_back(order[std::min(r, n - 1)]);
    }
    return trace;
}

/// Order-independent bit-exact digest of a closeness result.
std::uint64_t closeness_checksum(const ClosenessScores& scores) {
    std::uint64_t sum = 0;
    for (std::size_t v = 0; v < scores.closeness.size(); ++v) {
        const std::uint64_t bits =
            std::bit_cast<std::uint64_t>(scores.closeness[v]);
        sum += (bits ^ (v * 0x9E3779B97F4A7C15ull)) + scores.reachable[v];
    }
    return sum;
}

struct PolicyRun {
    RefinePolicy policy{RefinePolicy::Uniform};
    std::size_t steps_to_quiescence{0};
    double total_ops{0};
    double weighted_steps_to_exact{0};
    std::uint64_t checksum{0};
};

/// Run one budgeted engine under `policy` and measure, per row, the first RC
/// step after which its closeness is bitwise equal to the converged reference.
PolicyRun run_policy(const DynamicGraph& host, const EngineConfig& base,
                     RefinePolicy policy, double budget_ops,
                     const std::vector<VertexId>& trace,
                     const ClosenessScores& converged,
                     std::size_t max_steps) {
    EngineConfig config = base;
    config.refine_policy = policy;
    config.refine_budget_ops = budget_ops;
    AnytimeEngine engine(host, config);
    engine.initialize();

    const std::size_t n = host.num_vertices();
    std::vector<std::size_t> exact_step(n, 0);
    std::vector<std::uint8_t> exact(n, 0);

    // Heat is re-recorded every boundary: decay halves it per step, and a
    // live service would keep feeding queries while RC runs. Uniform gets the
    // same records — its contract is to ignore them.
    const auto record_trace = [&] {
        for (const VertexId v : trace) {
            engine.demand().record(v);
        }
    };
    record_trace();

    PolicyRun run;
    run.policy = policy;
    for (std::size_t step = 1; step <= max_steps; ++step) {
        if (!engine.rc_step()) {
            break;
        }
        const ClosenessScores now = engine.closeness();
        for (std::size_t v = 0; v < n; ++v) {
            // Unit weights: relaxation is monotone onto the unique fixpoint,
            // so a row that matches the reference bitwise stays matched.
            if (!exact[v] &&
                std::bit_cast<std::uint64_t>(now.closeness[v]) ==
                    std::bit_cast<std::uint64_t>(converged.closeness[v]) &&
                now.reachable[v] == converged.reachable[v]) {
                exact[v] = 1;
                exact_step[v] = step;
            }
        }
        run.steps_to_quiescence = step;
        record_trace();
    }

    for (const RcStepStats& s : engine.step_history()) {
        run.total_ops += s.ops;
    }
    double weighted = 0;
    for (const VertexId v : trace) {
        weighted += static_cast<double>(exact_step[v]);
    }
    run.weighted_steps_to_exact = weighted / static_cast<double>(trace.size());
    run.checksum = closeness_checksum(engine.closeness());
    return run;
}

}  // namespace
}  // namespace aa

int main(int argc, char** argv) {
    using namespace aa;
    const BenchOptions opt = parse(argc, argv);

    EngineConfig config;
    config.num_ranks = 8;
    config.ia_threads = 4;
    config.seed = opt.seed;

    // Unit weights (the BA generator's default) are what make the per-row
    // bitwise exactness test and the converged checksum cross-check sound:
    // the fixpoint is unique down to the bits under any schedule.
    Rng graph_rng(opt.seed);
    const DynamicGraph host =
        barabasi_albert(opt.vertices, opt.edge_factor, graph_rng);
    std::printf("refine ablation: n=%zu edges=%zu ranks=%u budget=%.0f "
                "zipf_s=%.2f queries=%zu\n",
                host.num_vertices(), host.num_edges(), config.num_ranks,
                opt.budget_ops, opt.zipf_s, opt.queries);

    Rng trace_rng(opt.seed * 31 + 7);
    const std::vector<VertexId> trace =
        zipf_trace(host.num_vertices(), opt.queries, opt.zipf_s, trace_rng);

    // Converged twin: the bitwise reference every budgeted run is scored
    // against, and the anchor of the checksum cross-check.
    AnytimeEngine reference(host, config);
    reference.initialize();
    reference.run_to_quiescence();
    const ClosenessScores converged = reference.closeness();
    const std::uint64_t want = closeness_checksum(converged);

    const std::size_t max_steps = host.num_vertices() * 4;
    const PolicyRun uniform =
        run_policy(host, config, RefinePolicy::Uniform, opt.budget_ops, trace,
                   converged, max_steps);
    const PolicyRun heat =
        run_policy(host, config, RefinePolicy::QueryHeat, opt.budget_ops,
                   trace, converged, max_steps);

    for (const PolicyRun* run : {&uniform, &heat}) {
        if (run->checksum != want) {
            std::fprintf(stderr,
                         "REFINE MISMATCH: %s converged closeness checksum "
                         "%016llx != reference %016llx\n",
                         std::string(refine_policy_name(run->policy)).c_str(),
                         static_cast<unsigned long long>(run->checksum),
                         static_cast<unsigned long long>(want));
            return 1;
        }
    }

    const double speedup =
        uniform.weighted_steps_to_exact /
        std::max(heat.weighted_steps_to_exact, 1e-12);
    for (const PolicyRun* run : {&uniform, &heat}) {
        std::printf("   %-8s steps=%4zu  total_ops=%12.0f  "
                    "query-weighted steps-to-exact=%8.2f\n",
                    std::string(refine_policy_name(run->policy)).c_str(), run->steps_to_quiescence,
                    run->total_ops, run->weighted_steps_to_exact);
    }
    std::printf("   speedup (query-weighted steps, uniform/heat): %.2fx  "
                "ops ratio (heat/uniform): %.3f\n",
                speedup, heat.total_ops / std::max(uniform.total_ops, 1e-12));

    // The acceptance bar: heat steering must at least halve the wait for the
    // query mass. A report that fails the bar is not written.
    if (speedup < 2.0) {
        std::fprintf(stderr,
                     "REFINE BAR MISSED: query-weighted speedup %.2fx < 2x\n",
                     speedup);
        return 1;
    }

    char buf[1024];
    std::string json;
    json += "{\n  \"bench\": \"refine\",\n";
    json += "  \"graph\": {\"generator\": \"barabasi-albert\", \"n\": " +
            std::to_string(host.num_vertices()) +
            ", \"edges\": " + std::to_string(host.num_edges()) +
            ", \"weights\": \"unit\"},\n";
    json += "  \"ranks\": " + std::to_string(config.num_ranks) +
            ",\n  \"seed\": " + std::to_string(opt.seed) + ",\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"budget_ops_per_rank_step\": %.0f,\n"
                  "  \"trace\": {\"distribution\": \"zipf\", \"s\": %.2f, "
                  "\"queries\": %zu},\n",
                  opt.budget_ops, opt.zipf_s, opt.queries);
    json += buf;
    json += "  \"note\": \"weighted_steps_to_exact is the query-trace-weighted "
            "mean of the first RC step at which a row's closeness is bitwise "
            "equal to the converged reference; both policies run the same "
            "per-step op budget. closeness_checksum is bit-exact and verified "
            "equal across uniform, heat and the unbudgeted reference before "
            "this file is written\",\n";
    json += "  \"runs\": [\n";
    const PolicyRun* runs[] = {&uniform, &heat};
    for (std::size_t i = 0; i < 2; ++i) {
        const PolicyRun& r = *runs[i];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"policy\": \"%s\", \"steps_to_quiescence\": %zu, "
            "\"total_relaxation_ops\": %.0f,\n     "
            "\"weighted_steps_to_exact\": %.4f, "
            "\"closeness_checksum\": \"%016llx\"}%s\n",
            std::string(refine_policy_name(r.policy)).c_str(), r.steps_to_quiescence,
            r.total_ops,
            r.weighted_steps_to_exact,
            static_cast<unsigned long long>(r.checksum), i == 0 ? "," : "");
        json += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "  ],\n  \"query_weighted_speedup\": %.4f,\n"
                  "  \"enforced_bar\": \"speedup >= 2.0 and all checksums "
                  "equal\"\n}\n",
                  speedup);
    json += buf;

    if (!opt.out.empty()) {
        std::FILE* f = std::fopen(opt.out.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot open %s\n", opt.out.c_str());
            return 1;
        }
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("wrote %s\n", opt.out.c_str());
    }
    return 0;
}
