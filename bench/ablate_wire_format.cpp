// Boundary-DV wire format ablation: v1 AoS vs v2 SoA payloads (and the v2
// SIMD sweeps on/off) on an R-MAT instance, all configurations running the
// identical relaxation schedule. The headline number is the bytes shipped per
// RC step — the acceptance bar is a >= 25% aggregate reduction for v2 — with
// kernel wall-clock as the secondary axis. The bench cross-checks that every
// configuration produced bit-identical distance checksums and op counts, so
// neither fewer bytes nor a faster sweep can come from doing less work.
//
// Emits a JSON report (--out, default BENCH_wire_format.json) recorded in the
// repository root; build with the `bench` preset (-O3) for quotable numbers.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/ia.hpp"
#include "core/rc.hpp"
#include "graph/generators.hpp"
#include "runtime/cluster.hpp"

namespace aa {
namespace {

struct BenchOptions {
    std::size_t vertices{20000};
    std::size_t edges{90000};
    std::size_t threads{8};
    int rounds{6};
    std::uint64_t seed{42};
    std::string out{"BENCH_wire_format.json"};
};

BenchOptions parse(int argc, char** argv) {
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", flag.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (flag == "--n") {
            opt.vertices = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--edges") {
            opt.edges = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--threads") {
            opt.threads = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--rounds") {
            opt.rounds = std::atoi(next().c_str());
        } else if (flag == "--seed") {
            opt.seed = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--out") {
            opt.out = next();
        } else {
            std::fprintf(stderr,
                         "usage: ablate_wire_format [--n N] [--edges M] "
                         "[--threads T] [--rounds R] [--seed S] [--out PATH]\n");
            std::exit(2);
        }
    }
    if (opt.vertices == 0 || opt.threads == 0 || opt.rounds < 1) {
        std::fprintf(stderr, "--n, --threads must be positive and --rounds >= 1\n");
        std::exit(2);
    }
    return opt;
}

/// Exactly `n` vertices of R-MAT structure (same construction as the RC
/// kernel ablation so the two benches describe the same instance).
DynamicGraph filtered_rmat(std::size_t n, std::size_t edges, Rng& rng) {
    std::size_t scale = 1;
    while ((std::size_t{1} << scale) < n) {
        ++scale;
    }
    const std::size_t oversample = edges * 2;
    const DynamicGraph big = rmat(scale, oversample, rng);
    DynamicGraph g(n);
    std::size_t kept = 0;
    for (VertexId u = 0; u < big.num_vertices() && kept < edges; ++u) {
        for (const Neighbor& nb : big.neighbors(u)) {
            if (u < nb.to && nb.to < n && kept < edges) {
                kept += g.add_edge(u, nb.to, nb.weight) ? 1 : 0;
            }
        }
    }
    return g;
}

struct RankState {
    Cluster cluster;
    std::vector<LocalSubgraph> sgs;
    std::vector<DistanceStore> stores;
    explicit RankState(std::uint32_t num_ranks) : cluster(num_ranks) {}
};

std::unique_ptr<RankState> build_state(const DynamicGraph& g,
                                       const std::vector<RankId>& owners,
                                       std::uint32_t num_ranks) {
    auto st = std::make_unique<RankState>(num_ranks);
    const std::size_t n = g.num_vertices();
    for (RankId r = 0; r < num_ranks; ++r) {
        st->sgs.emplace_back(r, owners);
        st->stores.emplace_back(n);
        for (const VertexId v : st->sgs[r].local_vertices()) {
            st->stores[r].add_row(v);
        }
    }
    for (VertexId u = 0; u < n; ++u) {
        for (const Neighbor& nb : g.neighbors(u)) {
            if (u >= nb.to) {
                continue;
            }
            st->sgs[owners[u]].add_local_edge(u, nb.to, nb.weight);
            if (owners[nb.to] != owners[u]) {
                st->sgs[owners[nb.to]].add_local_edge(u, nb.to, nb.weight);
            }
        }
    }
    ThreadPool ia_pool(1);
    for (RankId r = 0; r < num_ranks; ++r) {
        ia_dijkstra_all(st->sgs[r], st->stores[r], ia_pool);
    }
    return st;
}

struct Config {
    const char* name;
    BoundaryWireFormat format;
    bool simd;
};

struct ConfigResult {
    double kernel_seconds{0};   // ingest + propagate wall clock
    double total_seconds{0};
    double ops{0};
    double checksum{0};
    std::size_t total_bytes{0};
    std::size_t total_messages{0};
    std::vector<std::size_t> step_bytes;  // bytes posted per RC step
};

/// One full relaxation schedule under `cfg` (batched kernels, threaded
/// ingest/propagate). Every configuration replays the identical schedule:
/// the post canonicalizes column order for both formats and window
/// accounting uses the decoded footprint, so only the payload encoding (and
/// the sweep implementation) differ.
ConfigResult run_config(const RankState& base, const Config& cfg,
                        std::size_t threads, int rounds) {
    using Clock = std::chrono::steady_clock;
    const std::uint32_t num_ranks = base.cluster.num_ranks();
    std::vector<DistanceStore> stores = base.stores;
    for (DistanceStore& store : stores) {
        store.set_simd_enabled(cfg.simd);
    }
    Cluster cluster(num_ranks);
    ThreadPool pool(threads);

    ConfigResult result;
    const auto t_start = Clock::now();
    for (int round = 0; round < rounds; ++round) {
        RcPostProfile post_profile;
        for (RankId r = 0; r < num_ranks; ++r) {
            result.ops += rc_post_boundary_updates(base.sgs[r], stores[r],
                                                   cluster, cfg.format,
                                                   &post_profile);
        }
        result.step_bytes.push_back(post_profile.bytes);
        result.total_bytes += post_profile.bytes;
        result.total_messages += post_profile.messages;
        if (!cluster.has_pending_messages()) {
            break;
        }
        cluster.exchange();
        for (RankId r = 0; r < num_ranks; ++r) {
            const auto inbox = cluster.receive(r);
            const auto t0 = Clock::now();
            result.ops += rc_ingest_updates(base.sgs[r], stores[r], inbox,
                                            cfg.format, &pool,
                                            kRcIngestParallelGrain,
                                            kRcIngestWindowBytes, nullptr);
            result.ops += rc_propagate_local(base.sgs[r], stores[r], &pool,
                                             kRcPropagateParallelGrain, nullptr);
            result.kernel_seconds +=
                std::chrono::duration<double>(Clock::now() - t0).count();
        }
    }
    result.total_seconds =
        std::chrono::duration<double>(Clock::now() - t_start).count();
    for (RankId r = 0; r < num_ranks; ++r) {
        for (LocalId l = 0; l < stores[r].num_rows(); ++l) {
            for (const Weight w : stores[r].row(l)) {
                if (w < kInfinity) {
                    result.checksum += w;
                }
            }
        }
    }
    return result;
}

}  // namespace
}  // namespace aa

int main(int argc, char** argv) {
    using namespace aa;
    const BenchOptions opt = parse(argc, argv);

    Rng graph_rng(opt.seed);
    const DynamicGraph g = filtered_rmat(opt.vertices, opt.edges, graph_rng);
    std::printf("wire-format ablation: n=%zu edges=%zu threads=%zu rounds=%d\n",
                g.num_vertices(), g.num_edges(), opt.threads, opt.rounds);

    const Config configs[] = {
        {"v1+scalar", BoundaryWireFormat::V1Aos, false},
        {"v2+scalar", BoundaryWireFormat::V2Soa, false},
        {"v2+simd", BoundaryWireFormat::V2Soa, true},
    };
    constexpr int kConfigs = 3;

    std::string json;
    json += "{\n  \"bench\": \"wire_format\",\n";
    json += "  \"graph\": {\"generator\": \"filtered-rmat\", \"n\": " +
            std::to_string(g.num_vertices()) +
            ", \"edges\": " + std::to_string(g.num_edges()) + "},\n";
    json += "  \"threads\": " + std::to_string(opt.threads) +
            ",\n  \"rounds\": " + std::to_string(opt.rounds) +
            ",\n  \"seed\": " + std::to_string(opt.seed) + ",\n";
    const unsigned hw_threads_raw = std::thread::hardware_concurrency();
    const unsigned hw_threads = hw_threads_raw == 0 ? 1 : hw_threads_raw;
    json += "  \"host_hardware_concurrency\": " + std::to_string(hw_threads) +
            ",\n  \"configs\": [\n";

    bool all_bars_met = true;
    bool first_config = true;
    for (const std::uint32_t num_ranks : {4u, 8u}) {
        Rng owner_rng(opt.seed ^ num_ranks);
        std::vector<RankId> owners(g.num_vertices());
        for (std::size_t v = 0; v < owners.size(); ++v) {
            owners[v] = v < num_ranks
                            ? static_cast<RankId>(v)
                            : static_cast<RankId>(owner_rng.uniform(num_ranks));
        }
        std::printf("-- P=%u: building state + IA...\n", num_ranks);
        const auto state = build_state(g, owners, num_ranks);

        // Unmeasured warm-up with the same working-set size.
        std::printf("   warm-up...\n");
        (void)run_config(*state, configs[2], opt.threads, opt.rounds);

        ConfigResult results[kConfigs];
        for (int c = 0; c < kConfigs; ++c) {
            results[c] = run_config(*state, configs[c], opt.threads, opt.rounds);
            std::printf("   %-10s bytes %12zu  kernel %8.3fs  total %8.3fs  "
                        "ops %.3e\n",
                        configs[c].name, results[c].total_bytes,
                        results[c].kernel_seconds, results[c].total_seconds,
                        results[c].ops);
        }

        // Bit-identity cross-check: same relaxation work, same final
        // distances, same message fan-out in every configuration.
        for (int c = 1; c < kConfigs; ++c) {
            if (results[c].ops != results[0].ops ||
                results[c].checksum != results[0].checksum ||
                results[c].total_messages != results[0].total_messages ||
                results[c].step_bytes.size() != results[0].step_bytes.size()) {
                std::fprintf(stderr, "CONFIG MISMATCH vs v1+scalar: %s\n",
                             configs[c].name);
                return 1;
            }
        }
        // v2's byte stream is identical whether the sweeps run SIMD or not.
        if (results[1].total_bytes != results[2].total_bytes) {
            std::fprintf(stderr, "v2 bytes differ across simd toggle\n");
            return 1;
        }

        const double reduction =
            1.0 - static_cast<double>(results[1].total_bytes) /
                      static_cast<double>(results[0].total_bytes);
        std::printf("   v2 byte reduction: %.1f%% (bar: >= 25%%)\n",
                    reduction * 100.0);
        if (reduction < 0.25) {
            std::fprintf(stderr, "BYTE REDUCTION BAR MISSED at P=%u: %.3f\n",
                         num_ranks, reduction);
            all_bars_met = false;
        }

        if (!first_config) {
            json += ",\n";
        }
        first_config = false;
        json += "    {\"ranks\": " + std::to_string(num_ranks) +
                ", \"configs\": [";
        for (int c = 0; c < kConfigs; ++c) {
            if (c > 0) {
                json += ", ";
            }
            char buf[256];
            std::snprintf(buf, sizeof(buf),
                          "{\"name\": \"%s\", \"total_bytes\": %zu, "
                          "\"kernel_seconds\": %.6f, \"total_seconds\": %.6f, "
                          "\"ops\": %.0f}",
                          configs[c].name, results[c].total_bytes,
                          results[c].kernel_seconds, results[c].total_seconds,
                          results[c].ops);
            json += buf;
        }
        char tail[128];
        std::snprintf(tail, sizeof(tail), "], \"byte_reduction\": %.4f,\n",
                      reduction);
        json += tail;
        // Per-step bytes for both formats: the reduction is not an artifact
        // of one fat first step.
        json += "     \"step_bytes_v1\": [";
        for (std::size_t s = 0; s < results[0].step_bytes.size(); ++s) {
            json += (s > 0 ? ", " : "") +
                    std::to_string(results[0].step_bytes[s]);
        }
        json += "], \"step_bytes_v2\": [";
        for (std::size_t s = 0; s < results[1].step_bytes.size(); ++s) {
            json += (s > 0 ? ", " : "") +
                    std::to_string(results[1].step_bytes[s]);
        }
        json += "]}";
    }
    json += "\n  ]\n}\n";

    if (!all_bars_met) {
        std::fprintf(stderr, "acceptance bar missed; not writing %s\n",
                     opt.out.c_str());
        return 1;
    }
    if (!opt.out.empty()) {
        std::FILE* f = std::fopen(opt.out.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot open %s\n", opt.out.c_str());
            return 1;
        }
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("wrote %s\n", opt.out.c_str());
    }
    return 0;
}
