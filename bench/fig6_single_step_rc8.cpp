// Figure 6 reproduction: same strategy sweep as Figure 5, but the batch is
// injected at RC8 — a late stage of the analysis, when most partial results
// already exist.
//
// Expected shape (paper §V.B.2): same ordering as Figure 5 — RoundRobin-PS /
// CutEdge-PS for small batches, Repartition-S winning once the batch is
// large — with overall higher times than RC0 since 8 refinement steps have
// already been paid for.
#include <cstdio>

#include "core/strategies.hpp"
#include "harness.hpp"

namespace {

double run_scenario(const aa::DynamicGraph& host, const aa::EngineConfig& config,
                    std::size_t inject_step, const aa::GrowthBatch& batch,
                    aa::VertexAdditionStrategy& strategy,
                    aa::bench::JsonReport* report = nullptr,
                    const std::string& label = "") {
    aa::AnytimeEngine engine(host, config);
    engine.initialize();
    engine.run_rc_steps(inject_step);
    engine.apply_addition(batch, strategy);
    engine.run_to_quiescence();
    if (report != nullptr) {
        report->add_timeline(label, engine);
    }
    return engine.sim_seconds();
}

}  // namespace

int main(int argc, char** argv) {
    using namespace aa;
    using namespace aa::bench;

    const Options options = parse_options(
        argc, argv, "fig6: strategy comparison, single batch at RC8");
    const EngineConfig config = engine_config(options);
    const DynamicGraph host = make_host_graph(options);

    std::printf("Figure 6: vertex additions at RC8 on a %zu-vertex graph, %u ranks\n\n",
                host.num_vertices(), options.ranks);

    JsonReport report = make_report("fig6_single_step_rc8", options);
    const auto batch_sizes = figure5_batch_sizes(options);
    Table table({"batch", "repartition_s", "cutedge_ps_s", "roundrobin_ps_s"});
    for (const std::size_t batch_size : batch_sizes) {
        const GrowthBatch batch =
            make_batch(host.num_vertices(), batch_size, options.seed + batch_size);
        RepartitionS repartition;
        CutEdgePS cut_edge(options.seed * 3 + 1);
        RoundRobinPS round_robin;
        JsonReport* rp = batch_size == batch_sizes.back() ? &report : nullptr;
        const std::string tag = "@" + std::to_string(batch_size);
        table.add_row({std::to_string(batch_size),
                       fmt_seconds(run_scenario(host, config, 8, batch, repartition,
                                                rp, "repartition" + tag)),
                       fmt_seconds(run_scenario(host, config, 8, batch, cut_edge,
                                                rp, "cutedge_ps" + tag)),
                       fmt_seconds(run_scenario(host, config, 8, batch, round_robin,
                                                rp, "roundrobin_ps" + tag))});
    }
    table.print();
    table.write_csv(options.csv);
    report.set_table(table);
    report.write();
    return 0;
}
