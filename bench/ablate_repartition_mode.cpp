// Ablation E (extension beyond the paper): Repartition-S's partitioner.
// The paper repartitions the grown graph from scratch ("we reused the
// algorithm from the DD phase"); adaptive repartitioning (ParMETIS
// AdaptiveRepart style) refines the existing assignment instead, moving far
// fewer vertices and therefore migrating far fewer DV rows. This harness
// quantifies the trade: completion time vs. resulting cut quality, across
// the Figure 6 batch sweep.
#include <cstdio>

#include "core/strategies.hpp"
#include "harness.hpp"

namespace {

struct Outcome {
    double seconds;
    std::size_t cut_edges;
};

Outcome run(const aa::DynamicGraph& host, aa::EngineConfig config,
            aa::RepartitionMode mode, const aa::GrowthBatch& batch,
            aa::bench::JsonReport* report = nullptr,
            const std::string& label = "") {
    config.repartition_mode = mode;
    aa::AnytimeEngine engine(host, config);
    engine.initialize();
    engine.run_rc_steps(8);
    aa::RepartitionS strategy;
    engine.apply_addition(batch, strategy);
    engine.run_to_quiescence();
    if (report != nullptr) {
        report->add_timeline(label, engine);
    }
    return {engine.sim_seconds(), engine.current_cut_edges()};
}

}  // namespace

int main(int argc, char** argv) {
    using namespace aa;
    using namespace aa::bench;

    const Options options = parse_options(
        argc, argv, "ablation: scratch vs adaptive repartitioning");
    const EngineConfig config = engine_config(options);
    const DynamicGraph host = make_host_graph(options);

    std::printf("Ablation E: Repartition-S scratch vs adaptive, %zu-vertex graph, "
                "%u ranks, batch at RC8\n\n",
                host.num_vertices(), options.ranks);

    JsonReport report = make_report("ablate_repartition_mode", options);
    const auto batch_sizes = figure5_batch_sizes(options);
    Table table({"batch", "scratch_s", "scratch_cut", "adaptive_s", "adaptive_cut"});
    for (const std::size_t batch_size : batch_sizes) {
        const GrowthBatch batch =
            make_batch(host.num_vertices(), batch_size, options.seed + batch_size);
        JsonReport* rp = batch_size == batch_sizes.back() ? &report : nullptr;
        const std::string tag = "@" + std::to_string(batch_size);
        const Outcome scratch = run(host, config, RepartitionMode::Scratch, batch,
                                    rp, "scratch" + tag);
        const Outcome adaptive = run(host, config, RepartitionMode::Adaptive, batch,
                                     rp, "adaptive" + tag);
        table.add_row({std::to_string(batch_size), fmt_seconds(scratch.seconds),
                       std::to_string(scratch.cut_edges),
                       fmt_seconds(adaptive.seconds),
                       std::to_string(adaptive.cut_edges)});
    }
    table.print();
    table.write_csv(options.csv);
    report.set_table(table);
    report.write();
    return 0;
}
