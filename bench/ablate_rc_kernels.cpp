// RC kernel ablation: scalar vs batched vs batched+threaded relaxation on an
// R-MAT instance, all modes running the identical relaxation schedule. The
// headline number is the wall-clock spent inside the ingest/propagate kernels
// (post/exchange are shared code across modes); the bench also cross-checks
// that every mode produced bit-identical distance matrices and op counts, so
// a speedup can never come from doing less work.
//
// Emits a JSON report (--out, default BENCH_rc_kernels.json) recorded in the
// repository root; build with the `bench` preset (-O3) for quotable numbers.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "core/ia.hpp"
#include "core/rc.hpp"
#include "graph/generators.hpp"
#include "runtime/cluster.hpp"

namespace aa {
namespace {

struct BenchOptions {
    std::size_t vertices{20000};
    std::size_t edges{90000};
    std::size_t threads{8};
    int rounds{6};
    std::uint64_t seed{42};
    std::string out{"BENCH_rc_kernels.json"};
};

BenchOptions parse(int argc, char** argv) {
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", flag.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (flag == "--n") {
            opt.vertices = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--edges") {
            opt.edges = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--threads") {
            opt.threads = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--rounds") {
            opt.rounds = std::atoi(next().c_str());
        } else if (flag == "--seed") {
            opt.seed = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--out") {
            opt.out = next();
        } else {
            std::fprintf(stderr,
                         "usage: ablate_rc_kernels [--n N] [--edges M] "
                         "[--threads T] [--rounds R] [--seed S] [--out PATH]\n");
            std::exit(2);
        }
    }
    if (opt.vertices == 0 || opt.threads == 0 || opt.rounds < 1) {
        std::fprintf(stderr, "--n, --threads must be positive and --rounds >= 1\n");
        std::exit(2);
    }
    return opt;
}

/// Exactly `n` vertices of R-MAT structure: generate a larger power-of-two
/// instance and keep the edges with both endpoints below n (the generator
/// itself only makes 2^scale vertices).
DynamicGraph filtered_rmat(std::size_t n, std::size_t edges, Rng& rng) {
    std::size_t scale = 1;
    while ((std::size_t{1} << scale) < n) {
        ++scale;
    }
    // Oversample so roughly `edges` survive the filter; R-MAT's skew toward
    // low vertex ids means well over the uniform (n/2^scale)^2 fraction does.
    const std::size_t oversample = edges * 2;
    const DynamicGraph big = rmat(scale, oversample, rng);
    DynamicGraph g(n);
    std::size_t kept = 0;
    for (VertexId u = 0; u < big.num_vertices() && kept < edges; ++u) {
        for (const Neighbor& nb : big.neighbors(u)) {
            if (u < nb.to && nb.to < n && kept < edges) {
                kept += g.add_edge(u, nb.to, nb.weight) ? 1 : 0;
            }
        }
    }
    return g;
}

struct RankState {
    Cluster cluster;
    std::vector<LocalSubgraph> sgs;
    std::vector<DistanceStore> stores;
    explicit RankState(std::uint32_t num_ranks) : cluster(num_ranks) {}
};

std::unique_ptr<RankState> build_state(const DynamicGraph& g,
                                       const std::vector<RankId>& owners,
                                       std::uint32_t num_ranks) {
    auto st = std::make_unique<RankState>(num_ranks);
    const std::size_t n = g.num_vertices();
    for (RankId r = 0; r < num_ranks; ++r) {
        st->sgs.emplace_back(r, owners);
        st->stores.emplace_back(n);
        for (const VertexId v : st->sgs[r].local_vertices()) {
            st->stores[r].add_row(v);
        }
    }
    for (VertexId u = 0; u < n; ++u) {
        for (const Neighbor& nb : g.neighbors(u)) {
            if (u >= nb.to) {
                continue;
            }
            st->sgs[owners[u]].add_local_edge(u, nb.to, nb.weight);
            if (owners[nb.to] != owners[u]) {
                st->sgs[owners[nb.to]].add_local_edge(u, nb.to, nb.weight);
            }
        }
    }
    ThreadPool ia_pool(1);
    for (RankId r = 0; r < num_ranks; ++r) {
        ia_dijkstra_all(st->sgs[r], st->stores[r], ia_pool);
    }
    return st;
}

enum class Mode { Scalar, Untiled, Batched, Threaded };

const char* mode_name(Mode m) {
    switch (m) {
        case Mode::Scalar: return "scalar";
        case Mode::Untiled: return "batched+untiled";
        case Mode::Batched: return "batched";
        case Mode::Threaded: return "batched+threaded";
    }
    return "?";
}

struct ModeResult {
    double kernel_seconds{0};
    double ingest_seconds{0};
    double propagate_seconds{0};
    double total_seconds{0};
    double ops{0};
    double ingest_ops{0};
    double propagate_ops{0};
    double checksum{0};
};

/// One full relaxation schedule in `mode`. `metrics`, when non-null, is
/// attached to the cluster and receives one wall-clock span per phase per
/// rank per round ("rc.post" / "rc.exchange" / "rc.ingest" / "rc.propagate",
/// bytes/messages from the kernel profiles) — the measured runs pass nullptr
/// (or a disabled registry, for the overhead check) so the hot path is the
/// production one.
ModeResult run_mode(const RankState& base, Mode mode, std::size_t threads,
                    int rounds, MetricsRegistry* metrics = nullptr) {
    using Clock = std::chrono::steady_clock;
    const std::uint32_t num_ranks = base.cluster.num_ranks();
    // Fresh working copy: every mode starts from the identical post-IA state.
    std::vector<DistanceStore> stores = base.stores;
    Cluster cluster(num_ranks);
    cluster.set_metrics(metrics);
    std::unique_ptr<ThreadPool> pool;
    if (mode == Mode::Threaded) {
        pool = std::make_unique<ThreadPool>(threads);
    }

    ModeResult result;
    const auto t_start = Clock::now();
    const bool mx = metrics != nullptr && metrics->enabled();
    const auto secs = [&t_start](Clock::time_point tp) {
        return std::chrono::duration<double>(tp - t_start).count();
    };
    for (int round = 0; round < rounds; ++round) {
        for (RankId r = 0; r < num_ranks; ++r) {
            RcPostProfile post_profile;
            const auto p0 = Clock::now();
            result.ops += rc_post_boundary_updates(base.sgs[r], stores[r], cluster,
                                                   BoundaryWireFormat::V2Soa,
                                                   mx ? &post_profile : nullptr);
            if (mx) {
                MetricSpan span;
                span.name = "rc.post";
                span.rank = static_cast<std::int32_t>(r);
                span.step = round + 1;
                span.t_begin = secs(p0);
                span.t_end = secs(Clock::now());
                span.bytes = post_profile.bytes;
                span.messages = post_profile.messages;
                metrics->record_span(std::move(span));
            }
        }
        if (!cluster.has_pending_messages()) {
            break;
        }
        const auto x0 = Clock::now();
        cluster.exchange();
        if (mx) {
            MetricSpan span;
            span.name = "rc.exchange";
            span.step = round + 1;
            span.t_begin = secs(x0);
            span.t_end = secs(Clock::now());
            metrics->record_span(std::move(span));
        }
        for (RankId r = 0; r < num_ranks; ++r) {
            const auto inbox = cluster.receive(r);
            RcIngestProfile ingest_profile;
            RcPropagateProfile prop_profile;
            const auto t0 = Clock::now();
            double ingest = 0;
            double propagate = 0;
            switch (mode) {
                case Mode::Scalar:
                    ingest = rc_ingest_updates_scalar(base.sgs[r], stores[r], inbox);
                    break;
                case Mode::Untiled:
                case Mode::Batched:
                    ingest = rc_ingest_updates(base.sgs[r], stores[r], inbox,
                                               BoundaryWireFormat::V2Soa,
                                               nullptr, kRcIngestParallelGrain,
                                               kRcIngestWindowBytes,
                                               mx ? &ingest_profile : nullptr);
                    break;
                case Mode::Threaded:
                    ingest = rc_ingest_updates(base.sgs[r], stores[r], inbox,
                                               BoundaryWireFormat::V2Soa,
                                               pool.get(), kRcIngestParallelGrain,
                                               kRcIngestWindowBytes,
                                               mx ? &ingest_profile : nullptr);
                    break;
            }
            const auto t1 = Clock::now();
            switch (mode) {
                case Mode::Scalar:
                    propagate = rc_propagate_local_scalar(base.sgs[r], stores[r]);
                    break;
                case Mode::Untiled:
                    // The batched sweep with row blocking disabled
                    // (tile_cols = 0): isolates what the gathered L1-resident
                    // tiles buy on top of batching.
                    propagate = rc_propagate_local(base.sgs[r], stores[r], nullptr,
                                                   kRcPropagateParallelGrain,
                                                   mx ? &prop_profile : nullptr,
                                                   /*tile_cols=*/0);
                    break;
                case Mode::Batched:
                    propagate = rc_propagate_local(base.sgs[r], stores[r], nullptr,
                                                   kRcPropagateParallelGrain,
                                                   mx ? &prop_profile : nullptr);
                    break;
                case Mode::Threaded:
                    propagate = rc_propagate_local(base.sgs[r], stores[r],
                                                   pool.get(),
                                                   kRcPropagateParallelGrain,
                                                   mx ? &prop_profile : nullptr);
                    break;
            }
            const auto t2 = Clock::now();
            if (mx) {
                MetricSpan ingest_span;
                ingest_span.name = "rc.ingest";
                ingest_span.rank = static_cast<std::int32_t>(r);
                ingest_span.step = round + 1;
                ingest_span.t_begin = secs(t0);
                ingest_span.t_end = secs(t1);
                ingest_span.ops = ingest;
                ingest_span.attrs.emplace_back(
                    "entries", std::to_string(ingest_profile.entries));
                metrics->record_span(std::move(ingest_span));
                MetricSpan prop_span;
                prop_span.name = "rc.propagate";
                prop_span.rank = static_cast<std::int32_t>(r);
                prop_span.step = round + 1;
                prop_span.t_begin = secs(t1);
                prop_span.t_end = secs(t2);
                prop_span.ops = propagate;
                prop_span.attrs.emplace_back(
                    "rows_drained", std::to_string(prop_profile.rows_drained));
                metrics->record_span(std::move(prop_span));
            }
            result.ingest_ops += ingest;
            result.propagate_ops += propagate;
            result.ops += ingest + propagate;
            result.ingest_seconds += std::chrono::duration<double>(t1 - t0).count();
            result.propagate_seconds += std::chrono::duration<double>(t2 - t1).count();
            result.kernel_seconds += std::chrono::duration<double>(t2 - t0).count();
        }
    }
    result.total_seconds = std::chrono::duration<double>(Clock::now() - t_start).count();
    for (RankId r = 0; r < num_ranks; ++r) {
        for (LocalId l = 0; l < stores[r].num_rows(); ++l) {
            for (const Weight w : stores[r].row(l)) {
                if (w < kInfinity) {
                    result.checksum += w;
                }
            }
        }
    }
    return result;
}

}  // namespace
}  // namespace aa

int main(int argc, char** argv) {
    using namespace aa;
    const BenchOptions opt = parse(argc, argv);

    Rng graph_rng(opt.seed);
    const DynamicGraph g = filtered_rmat(opt.vertices, opt.edges, graph_rng);
    std::printf("rc-kernel ablation: n=%zu edges=%zu threads=%zu rounds=%d\n",
                g.num_vertices(), g.num_edges(), opt.threads, opt.rounds);

    std::string json;
    json += "{\n  \"bench\": \"rc_kernels\",\n";
    json += "  \"graph\": {\"generator\": \"filtered-rmat\", \"n\": " +
            std::to_string(g.num_vertices()) +
            ", \"edges\": " + std::to_string(g.num_edges()) + "},\n";
    json += "  \"threads\": " + std::to_string(opt.threads) +
            ",\n  \"rounds\": " + std::to_string(opt.rounds) +
            ",\n  \"seed\": " + std::to_string(opt.seed) + ",\n";
    // Threaded-mode wall clock only reflects the pool when the host actually
    // has cores to run it; record the host's concurrency so the JSON is
    // interpretable wherever it was produced. hardware_concurrency() may
    // return 0 when the value is not computable — treat that as one thread
    // rather than emitting a bogus 0 / tripping the comparison below.
    const unsigned hw_threads_raw = std::thread::hardware_concurrency();
    const unsigned hw_threads = hw_threads_raw == 0 ? 1 : hw_threads_raw;
    json += "  \"host_hardware_concurrency\": " + std::to_string(hw_threads) +
            ",\n  \"configs\": [\n";
    if (hw_threads < opt.threads) {
        std::printf(
            "   note: host has %u hardware thread(s) < %zu bench threads; "
            "threaded mode cannot show parallel speedup here\n",
            hw_threads, opt.threads);
    }

    bool first_config = true;
    for (const std::uint32_t num_ranks : {4u, 8u}) {
        Rng owner_rng(opt.seed ^ num_ranks);
        std::vector<RankId> owners(g.num_vertices());
        for (std::size_t v = 0; v < owners.size(); ++v) {
            owners[v] = v < num_ranks ? static_cast<RankId>(v)
                                      : static_cast<RankId>(owner_rng.uniform(num_ranks));
        }
        std::printf("-- P=%u: building state + IA...\n", num_ranks);
        const auto state = build_state(g, owners, num_ranks);

        // Unmeasured warm-up: a full pass over the same working-set size so
        // page-table/huge-page state is identical for all measured modes (on
        // this single run order would otherwise favour the later modes).
        std::printf("   warm-up...\n");
        (void)run_mode(*state, Mode::Batched, opt.threads, opt.rounds);

        ModeResult results[4];
        const Mode modes[4] = {Mode::Scalar, Mode::Untiled, Mode::Batched,
                               Mode::Threaded};
        constexpr int kModes = 4;
        constexpr int kBatched = 2;  // index of the tiled batched reference
        for (int m = 0; m < kModes; ++m) {
            results[m] = run_mode(*state, modes[m], opt.threads, opt.rounds);
            std::printf("   %-17s kernel %8.3fs (ingest %7.3fs / prop %7.3fs)  "
                        "total %8.3fs  ops %.3e\n",
                        mode_name(modes[m]), results[m].kernel_seconds,
                        results[m].ingest_seconds, results[m].propagate_seconds,
                        results[m].total_seconds, results[m].ops);
        }
        for (int m = 1; m < kModes; ++m) {
            if (results[m].ops != results[0].ops ||
                results[m].checksum != results[0].checksum) {
                std::fprintf(stderr, "MODE MISMATCH vs scalar: %s\n",
                             mode_name(modes[m]));
                return 1;
            }
        }
        const double sp_batched =
            results[0].kernel_seconds / results[kBatched].kernel_seconds;
        const double sp_threaded = results[0].kernel_seconds / results[3].kernel_seconds;
        // Tiling only touches the propagate sweep; compare that phase alone.
        const double sp_tiled =
            results[1].propagate_seconds / results[kBatched].propagate_seconds;
        std::printf("   speedup: batched %.2fx, batched+threaded %.2fx, "
                    "tiled propagate %.2fx over untiled\n",
                    sp_batched, sp_threaded, sp_tiled);

        // Overhead check: rerun Batched with a *disabled* registry attached.
        // Every metrics hook is live but short-circuits on the enabled bit,
        // so this must match the plain Batched run to noise.
        MetricsRegistry disabled;
        const ModeResult off =
            run_mode(*state, Mode::Batched, opt.threads, opt.rounds, &disabled);
        const double off_ratio = off.kernel_seconds / results[kBatched].kernel_seconds;
        std::printf("   disabled-metrics kernel %8.3fs (%.3fx of batched)\n",
                    off.kernel_seconds, off_ratio);

        // Separate instrumented pass (excluded from the measured numbers) so
        // the JSON carries a per-round, per-rank wall-clock timeline.
        MetricsRegistry instrumented;
        instrumented.enable();
        (void)run_mode(*state, Mode::Batched, opt.threads, opt.rounds, &instrumented);

        if (!first_config) {
            json += ",\n";
        }
        first_config = false;
        json += "    {\"ranks\": " + std::to_string(num_ranks) + ", \"modes\": [";
        for (int m = 0; m < kModes; ++m) {
            if (m > 0) {
                json += ", ";
            }
            char buf[256];
            std::snprintf(buf, sizeof(buf),
                          "{\"name\": \"%s\", \"kernel_seconds\": %.6f, "
                          "\"ingest_seconds\": %.6f, \"propagate_seconds\": %.6f, "
                          "\"total_seconds\": %.6f, \"ops\": %.0f}",
                          mode_name(modes[m]), results[m].kernel_seconds,
                          results[m].ingest_seconds, results[m].propagate_seconds,
                          results[m].total_seconds, results[m].ops);
            json += buf;
        }
        char sp[320];
        std::snprintf(sp, sizeof(sp),
                      "], \"speedup_batched\": %.3f, \"speedup_batched_threaded\": "
                      "%.3f, \"speedup_tiled_propagate\": %.3f, "
                      "\"disabled_metrics_kernel_seconds\": %.6f, "
                      "\"disabled_metrics_overhead\": %.3f,\n     \"timeline\": ",
                      sp_batched, sp_threaded, sp_tiled, off.kernel_seconds,
                      off_ratio);
        json += sp;
        json += metrics_to_json(instrumented, 5);
        json += "}";
    }
    json += "\n  ]\n}\n";

    if (!opt.out.empty()) {
        std::FILE* f = std::fopen(opt.out.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot open %s\n", opt.out.c_str());
            return 1;
        }
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("wrote %s\n", opt.out.c_str());
    }
    return 0;
}
