// Ablation F: validating the paper's §IV asymptotic analysis against the
// simulated measurements.
//
// Claims checked:
//   * static RC converges in O(P) steps (bounded by the longest processor
//     chain, §IV.C);
//   * total DV traffic — and with it the comm-dominated total time — grows
//     ~quadratically in n (every boundary row eventually ships ~n entries);
//   * the serialized all-to-all makes per-step comm grow with P at fixed n
//     (more, smaller messages paying per-message costs).
// The harness sweeps n and P, prints measured values plus the log-log slope
// between consecutive sizes.
#include <cmath>
#include <cstdio>

#include "core/engine.hpp"
#include "harness.hpp"

namespace {

struct Measured {
    double total_s;
    std::size_t steps;
    std::size_t bytes;
};

Measured run(std::size_t n, std::uint32_t ranks, std::uint64_t seed,
             aa::bench::JsonReport* report = nullptr,
             const std::string& label = "") {
    aa::bench::Options options;
    options.vertices = n;
    options.ranks = ranks;
    options.seed = seed;
    aa::EngineConfig config = aa::bench::engine_config(options);
    config.enable_metrics = report != nullptr && report->wanted();
    const aa::DynamicGraph host = aa::bench::make_host_graph(options);
    aa::AnytimeEngine engine(host, config);
    engine.initialize();
    const std::size_t steps = engine.run_to_quiescence();
    if (report != nullptr) {
        report->add_timeline(label, engine);
    }
    return {engine.sim_seconds(), steps, engine.cluster().stats().total_bytes};
}

}  // namespace

int main(int argc, char** argv) {
    using namespace aa::bench;

    const Options options =
        parse_options(argc, argv, "ablation: scaling vs the paper's analysis");

    std::printf("Ablation F: measured scaling vs the paper's §IV analysis\n\n");
    JsonReport report = make_report("ablate_scaling", options);

    {
        Table table({"n", "total_s", "bytes", "rc_steps", "slope_vs_prev"});
        double prev_time = 0;
        std::size_t prev_n = 0;
        for (const std::size_t n : {300u, 600u, 1200u}) {
            const Measured m = run(n, options.ranks, options.seed, &report,
                                   "n=" + std::to_string(n));
            std::string slope = "-";
            if (prev_n != 0) {
                slope = fmt_double(std::log(m.total_s / prev_time) /
                                       std::log(static_cast<double>(n) /
                                                static_cast<double>(prev_n)),
                                   2);
            }
            table.add_row({std::to_string(n), fmt_seconds(m.total_s),
                           std::to_string(m.bytes), std::to_string(m.steps),
                           slope});
            prev_time = m.total_s;
            prev_n = n;
        }
        std::printf("n sweep at P=%u (expect slope ~2: quadratic DV traffic):\n",
                    options.ranks);
        table.print();
        report.set_table(table);
    }

    {
        Table table({"P", "total_s", "bytes", "rc_steps"});
        for (const std::uint32_t p : {4u, 8u, 16u, 32u}) {
            const Measured m = run(options.scaled_vertices(), p, options.seed,
                                   &report, "P=" + std::to_string(p));
            table.add_row({std::to_string(p), fmt_seconds(m.total_s),
                           std::to_string(m.bytes), std::to_string(m.steps)});
        }
        std::printf("\nP sweep at n=%zu (steps bounded ~O(P); serialized\n"
                    "all-to-all per-message overhead grows with P):\n",
                    options.scaled_vertices());
        table.print();
    }
    report.write();
    return 0;
}
