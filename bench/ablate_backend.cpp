// Execution-backend ablation: the full engine (IA + RC steps + a mid-RC
// vertex-addition batch) under the sequential driver-loop backend vs the
// thread-per-rank ThreadedBackend, measuring host wall-clock per RC step.
// Both runs execute the identical simulated schedule, so the bench also
// cross-checks that sim-time and the distance matrices are bit-identical —
// any wall-clock difference is pure execution, never different work.
//
// Emits a JSON report (--out, default BENCH_backend.json) recorded in the
// repository root; build with the `bench` preset (-O3) for quotable numbers.
// The report records host_hardware_concurrency: on a single-core host the
// threaded backend cannot run ranks in parallel, so seq/threaded parity is
// the expected outcome there (flagged via "single_core_parity").
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/strategies.hpp"
#include "graph/generators.hpp"
#include "runtime/backend.hpp"

namespace aa {
namespace {

struct BenchOptions {
    std::size_t vertices{4000};
    std::size_t edge_factor{3};
    std::size_t steps{8};
    std::uint64_t seed{42};
    std::string out{"BENCH_backend.json"};
};

BenchOptions parse(int argc, char** argv) {
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", flag.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (flag == "--n") {
            opt.vertices = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--steps") {
            opt.steps = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--seed") {
            opt.seed = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--out") {
            opt.out = next();
        } else {
            std::fprintf(stderr,
                         "usage: ablate_backend [--n N] [--steps K] [--seed S] "
                         "[--out PATH]\n");
            std::exit(2);
        }
    }
    if (opt.vertices == 0 || opt.steps == 0) {
        std::fprintf(stderr, "--n and --steps must be positive\n");
        std::exit(2);
    }
    return opt;
}

struct BackendRun {
    double init_seconds{0};
    std::vector<double> step_seconds;  // wall clock of each RC step
    double add_seconds{0};
    double total_seconds{0};
    double sim_seconds{0};
    std::size_t rc_steps{0};
    double checksum{0};
};

BackendRun run_backend(const DynamicGraph& g, BackendKind backend,
                       std::size_t max_steps, std::uint64_t seed) {
    using Clock = std::chrono::steady_clock;
    const auto secs = [](Clock::time_point a, Clock::time_point b) {
        return std::chrono::duration<double>(b - a).count();
    };

    EngineConfig config;
    config.num_ranks = 8;
    config.ia_threads = 1;  // intra-rank pool off: isolate rank-level parallelism
    config.seed = seed;
    config.backend = backend;

    BackendRun run;
    const auto t_start = Clock::now();
    AnytimeEngine engine(g, config);
    engine.initialize();
    run.init_seconds = secs(t_start, Clock::now());

    // Half the steps pre-addition, a batch, then converge (bounded).
    const std::size_t pre = max_steps / 2;
    for (std::size_t s = 0; s < pre; ++s) {
        const auto t0 = Clock::now();
        if (!engine.rc_step()) {
            break;
        }
        run.step_seconds.push_back(secs(t0, Clock::now()));
    }
    GrowthConfig gc;
    gc.num_new = 16;
    gc.communities = 2;
    gc.intra_edges = 2;
    gc.host_edges = 2;
    Rng batch_rng(seed * 7 + 1);
    const auto batch = grow_batch(engine.num_vertices(), gc, batch_rng);
    RoundRobinPS strategy;
    const auto a0 = Clock::now();
    engine.apply_addition(batch, strategy);
    run.add_seconds = secs(a0, Clock::now());
    while (run.step_seconds.size() < max_steps) {
        const auto t0 = Clock::now();
        if (!engine.rc_step()) {
            break;
        }
        run.step_seconds.push_back(secs(t0, Clock::now()));
    }
    run.total_seconds = secs(t_start, Clock::now());
    run.sim_seconds = engine.sim_seconds();
    run.rc_steps = engine.rc_steps_completed();
    engine.visit_rows([&run](VertexId, std::span<const Weight> row) {
        for (const Weight w : row) {
            if (w < kInfinity) {
                run.checksum += w;
            }
        }
    });
    return run;
}

std::string run_to_json(const char* name, const BackendRun& run) {
    char buf[256];
    std::string json = "    {\"backend\": \"";
    json += name;
    std::snprintf(buf, sizeof(buf),
                  "\", \"init_seconds\": %.6f, \"add_seconds\": %.6f, "
                  "\"total_seconds\": %.6f, \"sim_seconds\": %.9f, "
                  "\"rc_steps\": %zu,\n     \"step_seconds\": [",
                  run.init_seconds, run.add_seconds, run.total_seconds,
                  run.sim_seconds, run.rc_steps);
    json += buf;
    for (std::size_t i = 0; i < run.step_seconds.size(); ++i) {
        std::snprintf(buf, sizeof(buf), "%s%.6f", i > 0 ? ", " : "",
                      run.step_seconds[i]);
        json += buf;
    }
    json += "]}";
    return json;
}

}  // namespace
}  // namespace aa

int main(int argc, char** argv) {
    using namespace aa;
    const BenchOptions opt = parse(argc, argv);

    Rng graph_rng(opt.seed);
    const DynamicGraph g = barabasi_albert(opt.vertices, opt.edge_factor,
                                           graph_rng, WeightRange{1.0, 3.0});
    // hardware_concurrency() may return 0 when not computable; clamp to 1 so
    // the single-core check below never divides the truth by a bogus zero.
    const unsigned hw_raw = std::thread::hardware_concurrency();
    const unsigned hw_threads = hw_raw == 0 ? 1 : hw_raw;
    const bool single_core_parity = hw_threads < 2;
    std::printf("backend ablation: n=%zu edges=%zu ranks=8 steps<=%zu "
                "host_hw_concurrency=%u\n",
                g.num_vertices(), g.num_edges(), opt.steps, hw_threads);
    if (single_core_parity) {
        std::printf("   note: single hardware thread — the threaded backend "
                    "cannot run ranks in parallel here; seq/threaded parity "
                    "is the expected result\n");
    }

    // Warm-up pass (unmeasured) so page-cache/allocator state is identical
    // for both measured runs.
    (void)run_backend(g, BackendKind::Sequential, opt.steps, opt.seed);

    const BackendRun seq =
        run_backend(g, BackendKind::Sequential, opt.steps, opt.seed);
    const BackendRun threaded =
        run_backend(g, BackendKind::Threaded, opt.steps, opt.seed);
    for (const auto& [name, run] :
         {std::pair<const char*, const BackendRun&>{"seq", seq},
          {"threaded", threaded}}) {
        double step_total = 0;
        for (const double s : run.step_seconds) {
            step_total += s;
        }
        std::printf("   %-8s init %7.3fs  %zu steps %7.3fs  add %7.3fs  "
                    "total %7.3fs  sim %.4fs\n",
                    name, run.init_seconds, run.step_seconds.size(), step_total,
                    run.add_seconds, run.total_seconds, run.sim_seconds);
    }

    // The determinism contract, enforced where the numbers are minted: both
    // backends must have executed the identical simulated schedule.
    if (seq.sim_seconds != threaded.sim_seconds ||
        seq.checksum != threaded.checksum || seq.rc_steps != threaded.rc_steps) {
        std::fprintf(stderr, "BACKEND MISMATCH: seq and threaded diverged "
                             "(sim %.9f vs %.9f, checksum %.6f vs %.6f)\n",
                     seq.sim_seconds, threaded.sim_seconds, seq.checksum,
                     threaded.checksum);
        return 1;
    }
    const double speedup = threaded.total_seconds > 0
                               ? seq.total_seconds / threaded.total_seconds
                               : 0;
    std::printf("   wall-clock speedup threaded vs seq: %.2fx (bit-identical "
                "results)\n", speedup);

    std::string json;
    json += "{\n  \"bench\": \"backend\",\n";
    json += "  \"graph\": {\"generator\": \"barabasi-albert\", \"n\": " +
            std::to_string(g.num_vertices()) +
            ", \"edges\": " + std::to_string(g.num_edges()) + "},\n";
    json += "  \"ranks\": 8,\n  \"seed\": " + std::to_string(opt.seed) + ",\n";
    json += "  \"host_hardware_concurrency\": " + std::to_string(hw_threads) +
            ",\n";
    json += std::string("  \"single_core_parity\": ") +
            (single_core_parity ? "true" : "false") + ",\n";
    json += "  \"note\": \"";
    json += single_core_parity
                ? "host has a single hardware thread: the threaded backend "
                  "cannot execute ranks concurrently, so seq/threaded "
                  "wall-clock parity is expected and acceptable; results are "
                  "bit-identical by contract"
                : "threaded backend runs one worker per rank between "
                  "collectives; results are bit-identical by contract";
    json += "\",\n";
    char buf[128];
    std::snprintf(buf, sizeof(buf), "  \"speedup_threaded\": %.3f,\n", speedup);
    json += buf;
    json += "  \"runs\": [\n" + run_to_json("seq", seq) + ",\n" +
            run_to_json("threaded", threaded) + "\n  ]\n}\n";

    if (!opt.out.empty()) {
        std::FILE* f = std::fopen(opt.out.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot open %s\n", opt.out.c_str());
            return 1;
        }
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("wrote %s\n", opt.out.c_str());
    }
    return 0;
}
