// Ablation B: the paper's §IV.B claim that the multithreaded IA Dijkstra is
// O(work / T). Measures (a) real wall time of the thread-pool Dijkstra at
// T = 1,2,4,8 and (b) the simulated IA seconds charged by the LogP model,
// which divide exactly by T by construction.
#include <benchmark/benchmark.h>

#include <numeric>

#include "core/distance_store.hpp"
#include "core/ia.hpp"
#include "graph/generators.hpp"
#include "runtime/logp.hpp"

namespace {

using namespace aa;

struct Fixture {
    DynamicGraph g;
    std::vector<RankId> owners;

    explicit Fixture(std::size_t n) {
        Rng rng(99);
        g = barabasi_albert(n, 3, rng);
        owners.assign(n, 0);
    }
};

void BM_IaDijkstra(benchmark::State& state) {
    static Fixture fixture(1500);
    const auto threads = static_cast<std::size_t>(state.range(0));
    ThreadPool pool(threads);

    double ops = 0;
    for (auto _ : state) {
        LocalSubgraph sg(0, fixture.owners);
        DistanceStore store(fixture.g.num_vertices());
        for (const VertexId v : sg.local_vertices()) {
            store.add_row(v);
        }
        for (const Edge& e : fixture.g.edges()) {
            sg.add_local_edge(e.u, e.v, e.weight);
        }
        ops = ia_dijkstra_all(sg, store, pool);
        benchmark::DoNotOptimize(store);
    }
    LogPParams params;
    state.counters["abstract_ops"] = ops;
    state.counters["sim_ia_seconds"] = params.compute_time(ops, threads);
}
BENCHMARK(BM_IaDijkstra)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
