// Ablation B: the paper's §IV.B claim that the multithreaded IA Dijkstra is
// O(work / T). Measures (a) real wall time of the thread-pool Dijkstra at
// T = 1,2,4,8 and (b) the simulated IA seconds charged by the LogP model,
// which divide exactly by T by construction.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <numeric>
#include <string_view>

#include "common/metrics.hpp"
#include "core/distance_store.hpp"
#include "core/ia.hpp"
#include "graph/generators.hpp"
#include "runtime/logp.hpp"

namespace {

using namespace aa;

struct Fixture {
    DynamicGraph g;
    std::vector<RankId> owners;

    explicit Fixture(std::size_t n) {
        Rng rng(99);
        g = barabasi_albert(n, 3, rng);
        owners.assign(n, 0);
    }
};

void BM_IaDijkstra(benchmark::State& state) {
    static Fixture fixture(1500);
    const auto threads = static_cast<std::size_t>(state.range(0));
    ThreadPool pool(threads);

    double ops = 0;
    for (auto _ : state) {
        LocalSubgraph sg(0, fixture.owners);
        DistanceStore store(fixture.g.num_vertices());
        for (const VertexId v : sg.local_vertices()) {
            store.add_row(v);
        }
        for (const Edge& e : fixture.g.edges()) {
            sg.add_local_edge(e.u, e.v, e.weight);
        }
        ops = ia_dijkstra_all(sg, store, pool);
        benchmark::DoNotOptimize(store);
    }
    LogPParams params;
    state.counters["abstract_ops"] = ops;
    state.counters["sim_ia_seconds"] = params.compute_time(ops, threads);
}
BENCHMARK(BM_IaDijkstra)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

/// Supplemental timeline report (--json PATH): one extra, unmeasured IA run
/// per thread count, recorded as back-to-back "ia" spans on the simulated
/// clock. The google-benchmark console/JSON output stays the measurement of
/// record; this gives the aa tooling the same span schema as the harness
/// benches.
bool write_timeline(const std::string& path) {
    MetricsRegistry registry;
    registry.enable();
    const Fixture fixture(1500);
    const LogPParams params;
    double t = 0;
    for (const std::size_t threads : {1, 2, 4, 8}) {
        ThreadPool pool(threads);
        LocalSubgraph sg(0, fixture.owners);
        DistanceStore store(fixture.g.num_vertices());
        for (const VertexId v : sg.local_vertices()) {
            store.add_row(v);
        }
        for (const Edge& e : fixture.g.edges()) {
            sg.add_local_edge(e.u, e.v, e.weight);
        }
        IaProfile profile;
        const double ops = ia_dijkstra_all(sg, store, pool, &profile);
        const double sim = params.compute_time(ops, threads);
        const auto h = registry.span_open("ia", 0, -1, t);
        registry.span_add(h, ops);
        registry.span_attr(h, "threads", std::to_string(threads));
        registry.span_attr(h, "sources", std::to_string(profile.sources));
        registry.span_attr(h, "folds", std::to_string(profile.folds));
        registry.span_close(h, t + sim);
        t += sim;
    }
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return false;
    }
    const std::string metrics = metrics_to_json(registry, 2);
    std::fprintf(f,
                 "{\n  \"bench\": \"ablate_ia_threads\",\n"
                 "  \"clock\": \"simulated\",\n  \"metrics\": %s\n}\n",
                 metrics.c_str());
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): strip our --json flag before
// google-benchmark's flag parser rejects it as unrecognized.
int main(int argc, char** argv) {
    std::string json_path;
    std::vector<char*> args;
    for (int i = 0; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--json" && i + 1 < argc) {
            json_path = argv[++i];
            continue;
        }
        args.push_back(argv[i]);
    }
    int bench_argc = static_cast<int>(args.size());
    benchmark::Initialize(&bench_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (!json_path.empty() && !write_timeline(json_path)) {
        return 1;
    }
    return 0;
}
