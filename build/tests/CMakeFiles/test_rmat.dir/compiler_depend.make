# Empty compiler generated dependencies file for test_rmat.
# This may be replaced when dependencies are built.
