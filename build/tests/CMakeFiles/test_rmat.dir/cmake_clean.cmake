file(REMOVE_RECURSE
  "CMakeFiles/test_rmat.dir/test_rmat.cpp.o"
  "CMakeFiles/test_rmat.dir/test_rmat.cpp.o.d"
  "test_rmat"
  "test_rmat.pdb"
  "test_rmat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rmat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
