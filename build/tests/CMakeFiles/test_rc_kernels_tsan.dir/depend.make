# Empty dependencies file for test_rc_kernels_tsan.
# This may be replaced when dependencies are built.
