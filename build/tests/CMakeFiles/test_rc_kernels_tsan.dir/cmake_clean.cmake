file(REMOVE_RECURSE
  "CMakeFiles/test_rc_kernels_tsan.dir/test_rc_kernels.cpp.o"
  "CMakeFiles/test_rc_kernels_tsan.dir/test_rc_kernels.cpp.o.d"
  "test_rc_kernels_tsan"
  "test_rc_kernels_tsan.pdb"
  "test_rc_kernels_tsan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rc_kernels_tsan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
