file(REMOVE_RECURSE
  "CMakeFiles/test_ia.dir/test_ia.cpp.o"
  "CMakeFiles/test_ia.dir/test_ia.cpp.o.d"
  "test_ia"
  "test_ia.pdb"
  "test_ia[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
