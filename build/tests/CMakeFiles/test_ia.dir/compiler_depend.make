# Empty compiler generated dependencies file for test_ia.
# This may be replaced when dependencies are built.
