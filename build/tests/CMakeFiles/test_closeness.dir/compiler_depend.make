# Empty compiler generated dependencies file for test_closeness.
# This may be replaced when dependencies are built.
