file(REMOVE_RECURSE
  "CMakeFiles/test_closeness.dir/test_closeness.cpp.o"
  "CMakeFiles/test_closeness.dir/test_closeness.cpp.o.d"
  "test_closeness"
  "test_closeness.pdb"
  "test_closeness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_closeness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
