# Empty compiler generated dependencies file for test_partition_simple.
# This may be replaced when dependencies are built.
