file(REMOVE_RECURSE
  "CMakeFiles/test_partition_simple.dir/test_partition_simple.cpp.o"
  "CMakeFiles/test_partition_simple.dir/test_partition_simple.cpp.o.d"
  "test_partition_simple"
  "test_partition_simple.pdb"
  "test_partition_simple[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partition_simple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
