# Empty dependencies file for test_repartition.
# This may be replaced when dependencies are built.
