file(REMOVE_RECURSE
  "CMakeFiles/test_repartition.dir/test_repartition.cpp.o"
  "CMakeFiles/test_repartition.dir/test_repartition.cpp.o.d"
  "test_repartition"
  "test_repartition.pdb"
  "test_repartition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_repartition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
