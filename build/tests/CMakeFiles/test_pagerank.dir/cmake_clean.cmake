file(REMOVE_RECURSE
  "CMakeFiles/test_pagerank.dir/test_pagerank.cpp.o"
  "CMakeFiles/test_pagerank.dir/test_pagerank.cpp.o.d"
  "test_pagerank"
  "test_pagerank.pdb"
  "test_pagerank[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
