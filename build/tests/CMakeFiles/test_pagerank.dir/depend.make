# Empty dependencies file for test_pagerank.
# This may be replaced when dependencies are built.
