file(REMOVE_RECURSE
  "CMakeFiles/test_adaptive_repartition.dir/test_adaptive_repartition.cpp.o"
  "CMakeFiles/test_adaptive_repartition.dir/test_adaptive_repartition.cpp.o.d"
  "test_adaptive_repartition"
  "test_adaptive_repartition.pdb"
  "test_adaptive_repartition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adaptive_repartition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
