# Empty compiler generated dependencies file for test_adaptive_repartition.
# This may be replaced when dependencies are built.
