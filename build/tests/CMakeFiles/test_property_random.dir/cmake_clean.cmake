file(REMOVE_RECURSE
  "CMakeFiles/test_property_random.dir/test_property_random.cpp.o"
  "CMakeFiles/test_property_random.dir/test_property_random.cpp.o.d"
  "test_property_random"
  "test_property_random.pdb"
  "test_property_random[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
