file(REMOVE_RECURSE
  "CMakeFiles/test_rc_kernels.dir/test_rc_kernels.cpp.o"
  "CMakeFiles/test_rc_kernels.dir/test_rc_kernels.cpp.o.d"
  "test_rc_kernels"
  "test_rc_kernels.pdb"
  "test_rc_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rc_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
