# Empty compiler generated dependencies file for test_quality.
# This may be replaced when dependencies are built.
