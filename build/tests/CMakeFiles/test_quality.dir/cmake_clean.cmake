file(REMOVE_RECURSE
  "CMakeFiles/test_quality.dir/test_quality.cpp.o"
  "CMakeFiles/test_quality.dir/test_quality.cpp.o.d"
  "test_quality"
  "test_quality.pdb"
  "test_quality[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
