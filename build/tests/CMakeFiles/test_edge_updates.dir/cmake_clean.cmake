file(REMOVE_RECURSE
  "CMakeFiles/test_edge_updates.dir/test_edge_updates.cpp.o"
  "CMakeFiles/test_edge_updates.dir/test_edge_updates.cpp.o.d"
  "test_edge_updates"
  "test_edge_updates.pdb"
  "test_edge_updates[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edge_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
