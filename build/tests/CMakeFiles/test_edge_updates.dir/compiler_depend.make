# Empty compiler generated dependencies file for test_edge_updates.
# This may be replaced when dependencies are built.
