file(REMOVE_RECURSE
  "CMakeFiles/test_community.dir/test_community.cpp.o"
  "CMakeFiles/test_community.dir/test_community.cpp.o.d"
  "test_community"
  "test_community.pdb"
  "test_community[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_community.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
