# Empty compiler generated dependencies file for test_community.
# This may be replaced when dependencies are built.
