
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/log.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/common/log.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/common/log.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/common/rng.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/common/rng.cpp.o.d"
  "/root/repo/src/core/baseline.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/core/baseline.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/core/baseline.cpp.o.d"
  "/root/repo/src/core/closeness.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/core/closeness.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/core/closeness.cpp.o.d"
  "/root/repo/src/core/distance_store.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/core/distance_store.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/core/distance_store.cpp.o.d"
  "/root/repo/src/core/edge_add.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/core/edge_add.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/core/edge_add.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/core/engine.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/core/engine.cpp.o.d"
  "/root/repo/src/core/ia.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/core/ia.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/core/ia.cpp.o.d"
  "/root/repo/src/core/quality.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/core/quality.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/core/quality.cpp.o.d"
  "/root/repo/src/core/rc.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/core/rc.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/core/rc.cpp.o.d"
  "/root/repo/src/core/repartition.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/core/repartition.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/core/repartition.cpp.o.d"
  "/root/repo/src/core/strategies.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/core/strategies.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/core/strategies.cpp.o.d"
  "/root/repo/src/core/subgraph.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/core/subgraph.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/core/subgraph.cpp.o.d"
  "/root/repo/src/graph/community.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/graph/community.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/graph/community.cpp.o.d"
  "/root/repo/src/graph/csr.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/graph/csr.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/graph/csr.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/graph/generators.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/graph/graph.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/graph/graph.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/graph/io.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/graph/io.cpp.o.d"
  "/root/repo/src/graph/metrics.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/graph/metrics.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/graph/metrics.cpp.o.d"
  "/root/repo/src/measures/betweenness.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/measures/betweenness.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/measures/betweenness.cpp.o.d"
  "/root/repo/src/measures/degree.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/measures/degree.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/measures/degree.cpp.o.d"
  "/root/repo/src/measures/pagerank.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/measures/pagerank.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/measures/pagerank.cpp.o.d"
  "/root/repo/src/partition/coarsen.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/partition/coarsen.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/partition/coarsen.cpp.o.d"
  "/root/repo/src/partition/initial.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/partition/initial.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/partition/initial.cpp.o.d"
  "/root/repo/src/partition/matching.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/partition/matching.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/partition/matching.cpp.o.d"
  "/root/repo/src/partition/multilevel.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/partition/multilevel.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/partition/multilevel.cpp.o.d"
  "/root/repo/src/partition/partition.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/partition/partition.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/partition/partition.cpp.o.d"
  "/root/repo/src/partition/refine.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/partition/refine.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/partition/refine.cpp.o.d"
  "/root/repo/src/partition/simple.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/partition/simple.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/partition/simple.cpp.o.d"
  "/root/repo/src/runtime/alltoall.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/runtime/alltoall.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/runtime/alltoall.cpp.o.d"
  "/root/repo/src/runtime/cluster.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/runtime/cluster.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/runtime/cluster.cpp.o.d"
  "/root/repo/src/runtime/logp.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/runtime/logp.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/runtime/logp.cpp.o.d"
  "/root/repo/src/runtime/mailbox.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/runtime/mailbox.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/runtime/mailbox.cpp.o.d"
  "/root/repo/src/runtime/thread_pool.cpp" "tests/CMakeFiles/aa_tsan.dir/__/src/runtime/thread_pool.cpp.o" "gcc" "tests/CMakeFiles/aa_tsan.dir/__/src/runtime/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
