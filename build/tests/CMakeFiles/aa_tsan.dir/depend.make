# Empty dependencies file for aa_tsan.
# This may be replaced when dependencies are built.
