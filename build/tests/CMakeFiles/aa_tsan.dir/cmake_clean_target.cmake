file(REMOVE_RECURSE
  "libaa_tsan.a"
)
