file(REMOVE_RECURSE
  "CMakeFiles/test_logp.dir/test_logp.cpp.o"
  "CMakeFiles/test_logp.dir/test_logp.cpp.o.d"
  "test_logp"
  "test_logp.pdb"
  "test_logp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
