# Empty compiler generated dependencies file for test_logp.
# This may be replaced when dependencies are built.
