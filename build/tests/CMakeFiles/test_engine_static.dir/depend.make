# Empty dependencies file for test_engine_static.
# This may be replaced when dependencies are built.
