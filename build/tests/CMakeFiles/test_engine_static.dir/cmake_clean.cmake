file(REMOVE_RECURSE
  "CMakeFiles/test_engine_static.dir/test_engine_static.cpp.o"
  "CMakeFiles/test_engine_static.dir/test_engine_static.cpp.o.d"
  "test_engine_static"
  "test_engine_static.pdb"
  "test_engine_static[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
