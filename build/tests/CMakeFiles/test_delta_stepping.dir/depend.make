# Empty dependencies file for test_delta_stepping.
# This may be replaced when dependencies are built.
