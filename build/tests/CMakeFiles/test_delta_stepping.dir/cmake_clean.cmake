file(REMOVE_RECURSE
  "CMakeFiles/test_delta_stepping.dir/test_delta_stepping.cpp.o"
  "CMakeFiles/test_delta_stepping.dir/test_delta_stepping.cpp.o.d"
  "test_delta_stepping"
  "test_delta_stepping.pdb"
  "test_delta_stepping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delta_stepping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
