# Empty dependencies file for test_serialization_fuzz.
# This may be replaced when dependencies are built.
