file(REMOVE_RECURSE
  "CMakeFiles/test_serialization_fuzz.dir/test_serialization_fuzz.cpp.o"
  "CMakeFiles/test_serialization_fuzz.dir/test_serialization_fuzz.cpp.o.d"
  "test_serialization_fuzz"
  "test_serialization_fuzz.pdb"
  "test_serialization_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serialization_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
