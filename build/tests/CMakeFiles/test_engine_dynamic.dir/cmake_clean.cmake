file(REMOVE_RECURSE
  "CMakeFiles/test_engine_dynamic.dir/test_engine_dynamic.cpp.o"
  "CMakeFiles/test_engine_dynamic.dir/test_engine_dynamic.cpp.o.d"
  "test_engine_dynamic"
  "test_engine_dynamic.pdb"
  "test_engine_dynamic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
