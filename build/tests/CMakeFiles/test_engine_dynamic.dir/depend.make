# Empty dependencies file for test_engine_dynamic.
# This may be replaced when dependencies are built.
