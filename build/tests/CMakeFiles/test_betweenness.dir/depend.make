# Empty dependencies file for test_betweenness.
# This may be replaced when dependencies are built.
