file(REMOVE_RECURSE
  "CMakeFiles/test_betweenness.dir/test_betweenness.cpp.o"
  "CMakeFiles/test_betweenness.dir/test_betweenness.cpp.o.d"
  "test_betweenness"
  "test_betweenness.pdb"
  "test_betweenness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_betweenness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
