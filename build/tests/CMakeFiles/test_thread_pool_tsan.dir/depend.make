# Empty dependencies file for test_thread_pool_tsan.
# This may be replaced when dependencies are built.
