file(REMOVE_RECURSE
  "CMakeFiles/test_thread_pool_tsan.dir/test_thread_pool.cpp.o"
  "CMakeFiles/test_thread_pool_tsan.dir/test_thread_pool.cpp.o.d"
  "test_thread_pool_tsan"
  "test_thread_pool_tsan.pdb"
  "test_thread_pool_tsan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thread_pool_tsan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
