file(REMOVE_RECURSE
  "CMakeFiles/test_engine_misc.dir/test_engine_misc.cpp.o"
  "CMakeFiles/test_engine_misc.dir/test_engine_misc.cpp.o.d"
  "test_engine_misc"
  "test_engine_misc.pdb"
  "test_engine_misc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
