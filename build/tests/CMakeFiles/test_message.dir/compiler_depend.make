# Empty compiler generated dependencies file for test_message.
# This may be replaced when dependencies are built.
