file(REMOVE_RECURSE
  "CMakeFiles/test_distance_store.dir/test_distance_store.cpp.o"
  "CMakeFiles/test_distance_store.dir/test_distance_store.cpp.o.d"
  "test_distance_store"
  "test_distance_store.pdb"
  "test_distance_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distance_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
