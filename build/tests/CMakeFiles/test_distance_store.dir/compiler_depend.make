# Empty compiler generated dependencies file for test_distance_store.
# This may be replaced when dependencies are built.
