file(REMOVE_RECURSE
  "CMakeFiles/test_alltoall.dir/test_alltoall.cpp.o"
  "CMakeFiles/test_alltoall.dir/test_alltoall.cpp.o.d"
  "test_alltoall"
  "test_alltoall.pdb"
  "test_alltoall[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alltoall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
