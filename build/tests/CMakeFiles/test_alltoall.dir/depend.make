# Empty dependencies file for test_alltoall.
# This may be replaced when dependencies are built.
