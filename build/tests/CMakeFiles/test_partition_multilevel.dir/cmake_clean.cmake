file(REMOVE_RECURSE
  "CMakeFiles/test_partition_multilevel.dir/test_partition_multilevel.cpp.o"
  "CMakeFiles/test_partition_multilevel.dir/test_partition_multilevel.cpp.o.d"
  "test_partition_multilevel"
  "test_partition_multilevel.pdb"
  "test_partition_multilevel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partition_multilevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
