file(REMOVE_RECURSE
  "CMakeFiles/snap_analysis.dir/snap_analysis.cpp.o"
  "CMakeFiles/snap_analysis.dir/snap_analysis.cpp.o.d"
  "snap_analysis"
  "snap_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snap_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
