# Empty dependencies file for snap_analysis.
# This may be replaced when dependencies are built.
