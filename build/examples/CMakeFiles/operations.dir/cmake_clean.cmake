file(REMOVE_RECURSE
  "CMakeFiles/operations.dir/operations.cpp.o"
  "CMakeFiles/operations.dir/operations.cpp.o.d"
  "operations"
  "operations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
