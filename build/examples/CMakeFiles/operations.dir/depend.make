# Empty dependencies file for operations.
# This may be replaced when dependencies are built.
