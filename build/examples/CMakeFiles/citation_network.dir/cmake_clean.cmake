file(REMOVE_RECURSE
  "CMakeFiles/citation_network.dir/citation_network.cpp.o"
  "CMakeFiles/citation_network.dir/citation_network.cpp.o.d"
  "citation_network"
  "citation_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citation_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
