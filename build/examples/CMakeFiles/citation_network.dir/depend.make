# Empty dependencies file for citation_network.
# This may be replaced when dependencies are built.
