# Empty dependencies file for partition_lab.
# This may be replaced when dependencies are built.
