file(REMOVE_RECURSE
  "CMakeFiles/partition_lab.dir/partition_lab.cpp.o"
  "CMakeFiles/partition_lab.dir/partition_lab.cpp.o.d"
  "partition_lab"
  "partition_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
