file(REMOVE_RECURSE
  "CMakeFiles/measures_tour.dir/measures_tour.cpp.o"
  "CMakeFiles/measures_tour.dir/measures_tour.cpp.o.d"
  "measures_tour"
  "measures_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measures_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
