# Empty compiler generated dependencies file for measures_tour.
# This may be replaced when dependencies are built.
