// temporal_replay — replay a timestamped edge stream through the engine.
//
// Input: SNAP temporal edge-list lines "u v t [w]" ('#' comments ignored).
// A line may carry a leading op keyword for fully-dynamic traces:
//
//   add u v t [w]       same as the bare form (w defaults to 1)
//   remove u v t        delete the edge (absent edges are skipped)
//   reweight u v t w    set the edge weight to w (increase or decrease)
//
// The stream is split into time windows; the first `--warmup` fraction forms
// the initial static graph (ops in the warmup prefix mutate it directly),
// then each window is applied as a dynamic update: previously unseen
// endpoints become a vertex-addition batch (assigned via the chosen
// strategy), edges between known vertices go through the anywhere
// edge-addition path, and the window's removes/reweights form one
// ShrinkBatch applied after the adds. Prints a timeline and a final
// centrality report, with an optional exact verification.
//
//   temporal_replay edges.tsv --windows 10 --strategy cutedge --verify
//   temporal_replay --synth 800 --backend threaded   (thread-per-rank engine)
//   temporal_replay --synth 800 --windows 8        (no file: synthesize)
//   temporal_replay --synth 800 --timeline replay.json --timeline-csv spans.csv
//
// Synthesized streams (--synth) include a churn tail: a deterministic
// selection of early edges is removed or reweighted in the later windows,
// so the fully-dynamic path is exercised without an input file.
//
// --timeline / --timeline-csv write the aa.timeline.v1 block (JSON) or the
// raw span stream (CSV) for the whole replay after convergence.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "core/baseline.hpp"
#include "core/closeness.hpp"
#include "core/edge_delete.hpp"
#include "core/engine.hpp"
#include "core/strategies.hpp"
#include "core/telemetry.hpp"
#include "graph/generators.hpp"

namespace {

using namespace aa;

enum class TraceOp { Add, Remove, Reweight };

struct TemporalEdge {
    std::uint64_t u;
    std::uint64_t v;
    double time;
    Weight w;
    TraceOp op = TraceOp::Add;
};

std::vector<TemporalEdge> load_stream(std::istream& in) {
    std::vector<TemporalEdge> edges;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#' || line[0] == '%') {
            continue;
        }
        std::istringstream fields(line);
        TemporalEdge e{0, 0, 0, 1.0, TraceOp::Add};
        if (std::isalpha(static_cast<unsigned char>(line[0]))) {
            std::string op;
            fields >> op;
            if (op == "add") {
                e.op = TraceOp::Add;
            } else if (op == "remove" || op == "del" || op == "delete") {
                e.op = TraceOp::Remove;
            } else if (op == "reweight") {
                e.op = TraceOp::Reweight;
            } else {
                std::fprintf(stderr, "skipping unknown op: %s\n", line.c_str());
                continue;
            }
        }
        if (!(fields >> e.u >> e.v >> e.time)) {
            std::fprintf(stderr, "skipping malformed line: %s\n", line.c_str());
            continue;
        }
        const bool got_weight = static_cast<bool>(fields >> e.w);
        if (e.op == TraceOp::Reweight && !got_weight) {
            std::fprintf(stderr, "skipping reweight without weight: %s\n",
                         line.c_str());
            continue;
        }
        if (e.u != e.v && (e.op == TraceOp::Remove || e.w > 0)) {
            edges.push_back(e);
        }
    }
    std::stable_sort(edges.begin(), edges.end(),
                     [](const TemporalEdge& a, const TemporalEdge& b) {
                         return a.time < b.time;
                     });
    return edges;
}

/// Synthesize a growth-like temporal stream: a BA graph whose edges are
/// timestamped by the creation order of their newer endpoint, plus a churn
/// tail — some early edges are later removed, others reweighted — so the
/// fully-dynamic remove/reweight path runs even without an input file.
std::vector<TemporalEdge> synth_stream(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    const auto g = barabasi_albert(n, 3, rng);
    std::vector<TemporalEdge> edges;
    std::vector<Edge> early;
    for (const Edge& e : g.edges()) {
        edges.push_back(
            {e.u, e.v, static_cast<double>(std::max(e.u, e.v)), 1.0});
        if (std::max(e.u, e.v) < n / 4) {
            early.push_back(e);
        }
    }
    const std::size_t churn = std::min(early.size() / 2, n / 25 + 1);
    const double spread = static_cast<double>(n) / 2.0;
    for (std::size_t i = 0; i < churn; ++i) {
        // Deterministic pick without replacement from the early edges.
        const std::size_t pick = rng.uniform(early.size());
        const Edge e = early[pick];
        early.erase(early.begin() + static_cast<std::ptrdiff_t>(pick));
        const double when =
            spread + spread * static_cast<double>(i + 1) /
                         static_cast<double>(churn + 1);
        if (i % 2 == 0) {
            edges.push_back({e.u, e.v, when, 1.0, TraceOp::Remove});
        } else {
            edges.push_back({e.u, e.v, when, 2.0, TraceOp::Reweight});
        }
    }
    std::stable_sort(edges.begin(), edges.end(),
                     [](const TemporalEdge& a, const TemporalEdge& b) {
                         return a.time < b.time;
                     });
    return edges;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace aa;

    std::string path;
    std::size_t windows = 10;
    double warmup = 0.5;
    std::string strategy_name = "rr";
    std::uint32_t ranks = 8;
    std::uint64_t seed = 42;
    std::size_t synth = 0;
    bool verify = false;
    std::string timeline_json;
    std::string timeline_csv;
    BackendKind backend = BackendKind::Sequential;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--windows") windows = std::stoul(value());
        else if (arg == "--warmup") warmup = std::stod(value());
        else if (arg == "--strategy") strategy_name = value();
        else if (arg == "--ranks") ranks = static_cast<std::uint32_t>(std::stoul(value()));
        else if (arg == "--seed") seed = std::stoull(value());
        else if (arg == "--synth") synth = std::stoul(value());
        else if (arg == "--verify") verify = true;
        else if (arg == "--timeline") timeline_json = value();
        else if (arg == "--timeline-csv") timeline_csv = value();
        else if (arg == "--backend") {
            const std::string name = value();
            if (!parse_backend_kind(name, backend)) {
                std::fprintf(stderr,
                             "error: unknown backend '%s' (valid: seq, "
                             "threaded)\n",
                             name.c_str());
                return 2;
            }
        }
        else if (arg[0] == '-') {
            std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
            return 2;
        } else {
            path = arg;
        }
    }

    std::vector<TemporalEdge> stream;
    if (!path.empty()) {
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", path.c_str());
            return 2;
        }
        stream = load_stream(in);
    } else {
        if (synth == 0) {
            synth = 800;
        }
        stream = synth_stream(synth, seed);
        std::printf("no input file: synthesized growth stream of %zu edges\n",
                    stream.size());
    }
    if (stream.empty()) {
        std::fprintf(stderr, "empty edge stream\n");
        return 2;
    }

    // Dense remap in first-appearance order; warmup prefix = initial graph.
    const std::size_t warmup_edges = std::max<std::size_t>(
        1, static_cast<std::size_t>(warmup * static_cast<double>(stream.size())));
    std::map<std::uint64_t, VertexId> remap;
    const auto intern = [&remap](std::uint64_t raw) {
        const auto [it, inserted] =
            remap.emplace(raw, static_cast<VertexId>(remap.size()));
        return it->second;
    };

    DynamicGraph initial;
    for (std::size_t i = 0; i < warmup_edges; ++i) {
        if (stream[i].op != TraceOp::Add) {
            // Warmup-prefix churn mutates the initial graph directly.
            const auto u = remap.find(stream[i].u);
            const auto v = remap.find(stream[i].v);
            if (u == remap.end() || v == remap.end() ||
                !(initial.edge_weight(u->second, v->second) < kInfinity)) {
                continue;
            }
            if (stream[i].op == TraceOp::Remove) {
                initial.remove_edge(u->second, v->second);
            } else {
                initial.set_edge_weight(u->second, v->second, stream[i].w);
            }
            continue;
        }
        const auto u = intern(stream[i].u);
        const auto v = intern(stream[i].v);
        const auto needed = static_cast<std::size_t>(std::max(u, v)) + 1;
        if (initial.num_vertices() < needed) {
            initial.add_vertices(needed - initial.num_vertices());
        }
        initial.add_edge(u, v, stream[i].w);
    }

    EngineConfig config;
    config.num_ranks = ranks;
    config.ia_threads = 4;
    config.seed = seed;
    config.backend = backend;
    config.enable_metrics = !timeline_json.empty() || !timeline_csv.empty();
    DynamicGraph mirror = initial;
    AnytimeEngine engine(std::move(initial), config);
    engine.initialize();
    engine.run_rc_steps(2);
    std::printf("[%8.4fs] warmup graph: %zu vertices, %zu edges (%zu stream "
                "edges), %u ranks\n",
                engine.sim_seconds(), engine.num_vertices(), mirror.num_edges(),
                warmup_edges, ranks);

    RoundRobinPS round_robin;
    CutEdgePS cut_edge(seed * 13 + 5);
    RepartitionS repartition;
    VertexAdditionStrategy* strategy = &round_robin;
    if (strategy_name == "cutedge") {
        strategy = &cut_edge;
    } else if (strategy_name == "repart") {
        strategy = &repartition;
    }

    // Remaining stream split into equal windows of edges.
    const std::size_t remaining = stream.size() - warmup_edges;
    const std::size_t per_window = std::max<std::size_t>(1, remaining / windows);
    std::size_t cursor = warmup_edges;
    std::size_t window_index = 0;
    while (cursor < stream.size()) {
        const std::size_t end = std::min(stream.size(), cursor + per_window);
        // Partition window edges into new-vertex batch vs old-vertex edges.
        GrowthBatch batch;
        batch.base_id = static_cast<VertexId>(mirror.num_vertices());
        std::vector<Edge> old_edges;
        ShrinkBatch shrink;
        std::map<std::uint64_t, VertexId> fresh;  // raw -> new dense id
        for (std::size_t i = cursor; i < end; ++i) {
            if (stream[i].op != TraceOp::Add) {
                // Removes/reweights can only touch already-known vertices.
                const auto u = remap.find(stream[i].u);
                const auto v = remap.find(stream[i].v);
                if (u == remap.end() || v == remap.end()) {
                    std::fprintf(stderr,
                                 "skipping op on unknown vertices %llu %llu\n",
                                 static_cast<unsigned long long>(stream[i].u),
                                 static_cast<unsigned long long>(stream[i].v));
                    continue;
                }
                const Edge e{u->second, v->second, stream[i].w};
                if (stream[i].op == TraceOp::Remove) {
                    shrink.deletions.push_back(e);
                } else {
                    shrink.reweights.push_back(e);
                }
                continue;
            }
            const auto resolve = [&](std::uint64_t raw) -> VertexId {
                const auto known = remap.find(raw);
                if (known != remap.end()) {
                    return known->second;
                }
                const auto [it, inserted] = fresh.emplace(
                    raw, batch.base_id + static_cast<VertexId>(fresh.size()));
                if (inserted) {
                    remap.emplace(raw, it->second);
                }
                return it->second;
            };
            const VertexId u = resolve(stream[i].u);
            const VertexId v = resolve(stream[i].v);
            if (u >= batch.base_id || v >= batch.base_id) {
                batch.edges.push_back({u, v, stream[i].w});
            } else {
                old_edges.push_back({u, v, stream[i].w});
            }
        }
        batch.num_new = fresh.size();

        if (batch.num_new > 0) {
            engine.apply_addition(batch, *strategy);
            mirror = apply_batch(mirror, batch);
        }
        if (!old_edges.empty()) {
            engine.add_edges(old_edges);
            for (const Edge& e : old_edges) {
                mirror.add_edge(e.u, e.v, e.weight);
            }
        }
        if (!shrink.deletions.empty() || !shrink.reweights.empty()) {
            // Adds first, then the shrink batch: a remove of an edge added
            // in the same window deletes it, matching the mirror below.
            engine.apply_deletion(shrink);
            for (const Edge& e : shrink.deletions) {
                if (mirror.edge_weight(e.u, e.v) < kInfinity) {
                    mirror.remove_edge(e.u, e.v);
                }
            }
            for (const Edge& e : shrink.reweights) {
                if (mirror.edge_weight(e.u, e.v) < kInfinity) {
                    mirror.set_edge_weight(e.u, e.v, e.weight);
                }
            }
        }
        engine.rc_step();  // one refinement step between windows
        std::printf("[%8.4fs] window %zu: +%zu vertices, +%zu edges (%zu to "
                    "existing), -%zu edges, %zu reweights -> %zu vertices\n",
                    engine.sim_seconds(), ++window_index, batch.num_new,
                    batch.edges.size() + old_edges.size(), old_edges.size(),
                    shrink.deletions.size(), shrink.reweights.size(),
                    engine.num_vertices());
        cursor = end;
    }

    engine.run_to_quiescence();
    const auto scores = engine.closeness();
    const auto ranking = closeness_ranking(scores);
    std::printf("[%8.4fs] replay complete: %zu vertices, RC%zu\n",
                engine.sim_seconds(), engine.num_vertices(),
                engine.rc_steps_completed());
    std::printf("top-5 closeness:");
    for (int i = 0; i < 5 && i < static_cast<int>(ranking.size()); ++i) {
        std::printf(" %u", ranking[i]);
    }
    std::printf("\n");

    const auto dump = [&engine](const std::string& out_path,
                                const std::string& payload) {
        std::ofstream out(out_path);
        if (!out) {
            std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
            return false;
        }
        out << payload << '\n';
        std::printf("[%8.4fs] timeline written to %s\n", engine.sim_seconds(),
                    out_path.c_str());
        return true;
    };
    if (!timeline_json.empty() && !dump(timeline_json, telemetry_json(engine))) {
        return 2;
    }
    if (!timeline_csv.empty() && !dump(timeline_csv, telemetry_csv(engine))) {
        return 2;
    }

    if (verify) {
        const auto exact = exact_apsp(mirror);
        const auto matrix = engine.full_distance_matrix();
        std::size_t mismatches = 0;
        for (std::size_t v = 0; v < exact.size(); ++v) {
            for (std::size_t t = 0; t < exact.size(); ++t) {
                const bool both_inf =
                    !(matrix[v][t] < kInfinity) && !(exact[v][t] < kInfinity);
                if (!both_inf && std::abs(matrix[v][t] - exact[v][t]) > 1e-9) {
                    ++mismatches;
                }
            }
        }
        std::printf("verify: %zu mismatches (%s)\n", mismatches,
                    mismatches == 0 ? "EXACT" : "FAILED");
        return mismatches == 0 ? 0 : 1;
    }
    return 0;
}
