// scenario_runner — scriptable driver for dynamic-analysis experiments.
//
// Executes a plain-text scenario describing a host graph and a timeline of
// dynamic events against the AnytimeEngine, printing a timeline report.
// This is the tool for trying strategy mixes on your own workloads without
// writing C++.
//
//   scenario_runner workload.scn
//   scenario_runner -            # read the scenario from stdin
//
// Scenario grammar (one command per line, '#' comments):
//   graph ba <n> <m>                  Barabasi-Albert host
//   graph er <n> <edges>              Erdos-Renyi host
//   graph file <path>                 SNAP edge-list host
//   ranks <P>      threads <T>        cluster shape (before graph)
//   seed <S>                          RNG seed (before graph)
//   kernel dijkstra|delta             IA kernel (before graph)
//   backend seq|threaded              rank execution backend (before graph)
//   steps <k>                         run k RC steps
//   add <count> rr|cutedge|repart [communities]   vertex batch
//   edges <count>                     random new edges between old vertices
//   delete <u> <v>                    remove one edge (invalidate/re-settle)
//   delete-vertex <v>                 remove every edge incident to v
//   reweight <u> <v> <w>              set an edge weight (raises allowed)
//   converge                          run RC to quiescence
//   closeness [top]                   print top-k closeness (default 5)
//   telemetry                         print per-step telemetry so far
//   metrics [json|csv] [path]         dump the aa.timeline.v1 block (stdout
//                                     when no path is given)
//   checkpoint <path>                 save engine state
//   restore <path>                    replace the engine from a checkpoint
//   verify                            check against exact sequential APSP
//   serve-policy stale|next-step|quiescence|bounded-error
//                                     freshness for query/topk
//   serve-shards on|off               route reads through per-shard snapshot
//                                     planes (rebuilds the serve layer)
//   tenant <name> [max-pending] [slo] define a tenant (admission limit,
//                                     freshness SLO wall-seconds) and make it
//                                     the issuer of later query/topk commands
//   query <v> [policy]                point closeness query via the serve
//                                     layer (answers from the latest
//                                     published snapshot)
//   topk [k] [policy]                 top-k closeness via the serve layer
//   refine-policy uniform|heat|topk   RC worklist-ordering policy
//   heat <v> [weight]                 inject query heat at a vertex
//   bounds <v>                        print the certified closeness interval
//   shards                            print per-rank shard ownership + load
//   migrate <n>                       plan and apply up to n shard moves
//   auto-migrate on|off [threshold]   planner-driven moves at step boundaries
//   help                              print this command list
//
// query/topk go through the QueryService: they read the versioned snapshot
// published at the last engine boundary rather than touching engine state,
// and report which snapshot version answered. Waiting policies run the
// service in synchronous mode — an unsatisfied query steps the engine inline.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/baseline.hpp"
#include "core/closeness.hpp"
#include "core/engine.hpp"
#include "core/strategies.hpp"
#include "core/telemetry.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "serve/service.hpp"

namespace {

using namespace aa;

const char kHelpText[] =
    "commands (one per line, '#' comments):\n"
    "  ranks <P>      threads <T>        cluster shape (before graph)\n"
    "  seed <S>                          RNG seed (before graph)\n"
    "  kernel dijkstra|delta             IA kernel (before graph)\n"
    "  backend seq|threaded              rank execution backend (before graph)\n"
    "  graph ba <n> <m>                  Barabasi-Albert host\n"
    "  graph er <n> <edges>              Erdos-Renyi host\n"
    "  graph file <path>                 SNAP edge-list host\n"
    "  steps <k>                         run k RC steps\n"
    "  add <count> rr|cutedge|repart [communities]   vertex batch\n"
    "  edges <count>                     random new edges between old vertices\n"
    "  delete <u> <v>                    remove one edge (invalidate/re-settle)\n"
    "  delete-vertex <v>                 remove every edge incident to v\n"
    "  reweight <u> <v> <w>              set an edge weight (raises allowed)\n"
    "  converge                          run RC to quiescence\n"
    "  closeness [top]                   print top-k closeness (engine-side)\n"
    "  telemetry                         print per-step telemetry so far\n"
    "  metrics [json|csv] [path]         dump the aa.timeline.v1 block\n"
    "  checkpoint <path>                 save engine state\n"
    "  restore <path>                    replace the engine from a checkpoint\n"
    "  verify                            check against exact sequential APSP\n"
    "  serve-policy stale|next-step|quiescence|bounded-error\n"
    "                                    freshness for query/topk\n"
    "  serve-shards on|off               per-shard read planes (rebuilds the\n"
    "                                    serve layer; tenant counters reset)\n"
    "  tenant <name> [max-pending] [slo] define a tenant and make it the\n"
    "                                    issuer of later query/topk commands\n"
    "  query <v> [policy]                point query via the serve layer\n"
    "  topk [k] [policy]                 top-k query via the serve layer\n"
    "  refine-policy uniform|heat|topk   RC worklist-ordering policy\n"
    "  heat <v> [weight]                 inject query heat at a vertex\n"
    "  bounds <v>                        print the certified closeness interval\n"
    "  shards                            print per-rank shard ownership + load\n"
    "  migrate <n>                       plan and apply up to n shard moves\n"
    "  auto-migrate on|off [threshold]   planner-driven moves at step boundaries\n"
    "  help                              print this command list\n";

bool parse_policy(const std::string& name, FreshnessPolicy& policy) {
    if (name == "stale") {
        policy = FreshnessPolicy::ServeStale;
    } else if (name == "next-step") {
        policy = FreshnessPolicy::WaitForNextStep;
    } else if (name == "quiescence") {
        policy = FreshnessPolicy::WaitForQuiescence;
    } else if (name == "bounded-error") {
        policy = FreshnessPolicy::BoundedError;
    } else {
        std::fprintf(stderr,
                     "error: unknown freshness policy '%s' (valid: stale, "
                     "next-step, quiescence, bounded-error)\n",
                     name.c_str());
        return false;
    }
    return true;
}

/// One scenario-defined tenant. `id` is only valid for the currently
/// attached service (register_tenant ids are per-service); attach_service
/// re-registers every definition and refreshes the ids.
struct TenantDef {
    std::string name;
    TenantConfig config;
    TenantId id{kDefaultTenant};
};

struct Runner {
    EngineConfig config;
    std::uint64_t seed{42};
    std::unique_ptr<AnytimeEngine> engine;
    std::unique_ptr<QueryService> service;
    FreshnessPolicy policy{FreshnessPolicy::ServeStale};
    bool serve_shards{true};
    std::vector<TenantDef> tenant_defs;
    std::string active_tenant_name{"default"};
    TenantId active_tenant{kDefaultTenant};
    DynamicGraph mirror;  // for `verify`
    RoundRobinPS round_robin;
    std::unique_ptr<CutEdgePS> cut_edge;
    RepartitionS repartition;
    Rng workload_rng{1234};
    int exit_code{0};

    Runner() {
        config.num_ranks = 8;
        config.ia_threads = 4;
        // Scenario runs are exploratory, not measured: always collect the
        // phase-span timeline so `metrics` has something to dump.
        config.enable_metrics = true;
    }

    void require_engine(const std::string& command) const {
        if (engine == nullptr) {
            std::fprintf(stderr, "error: '%s' before 'graph ...'\n",
                         command.c_str());
            std::exit(2);
        }
    }

    void start(DynamicGraph graph) {
        config.seed = seed;
        mirror = graph;
        cut_edge = std::make_unique<CutEdgePS>(seed * 31 + 7);
        service.reset();  // must detach from the old engine first
        engine = std::make_unique<AnytimeEngine>(std::move(graph), config);
        engine->initialize();
        attach_service();
        std::printf("[%8.4fs] graph ready: %zu vertices, %zu edges, %u ranks, "
                    "cut %zu\n",
                    engine->sim_seconds(), engine->num_vertices(),
                    mirror.num_edges(), config.num_ranks,
                    engine->current_cut_edges());
    }

    /// Put a QueryService in synchronous mode over the current engine: every
    /// engine boundary publishes a snapshot, and a query whose policy the
    /// current snapshot cannot satisfy advances the engine inline instead of
    /// blocking (scenario_runner is single-threaded).
    void attach_service() {
        ServeConfig sc;
        sc.enable_metrics = false;  // the engine timeline is the record here
        sc.enable_bounds = true;    // bounded-error queries need intervals
        sc.shard_reads = serve_shards;
        service = std::make_unique<QueryService>(*engine, sc);
        service->set_step_driver(
            [this] { return engine->run_rc_steps(1) > 0; });
        // register_tenant ids belong to one service instance: re-register
        // every scenario-defined tenant and refresh the stored ids.
        for (TenantDef& def : tenant_defs) {
            def.id = service->register_tenant(def.name, def.config);
        }
        active_tenant = tenant_id(active_tenant_name);
    }

    TenantId tenant_id(const std::string& name) const {
        for (const TenantDef& def : tenant_defs) {
            if (def.name == name) {
                return def.id;
            }
        }
        return kDefaultTenant;
    }

    bool handle(const std::string& line) {
        std::istringstream in(line);
        std::string command;
        if (!(in >> command) || command[0] == '#') {
            return true;
        }
        if (command == "ranks") {
            in >> config.num_ranks;
        } else if (command == "threads") {
            in >> config.ia_threads;
        } else if (command == "seed") {
            in >> seed;
            workload_rng.reseed(seed * 101);
        } else if (command == "kernel") {
            std::string kernel;
            in >> kernel;
            if (kernel == "delta") {
                config.ia_kernel = IaKernel::DeltaStepping;
            } else if (kernel == "dijkstra") {
                config.ia_kernel = IaKernel::Dijkstra;
            } else {
                std::fprintf(stderr,
                             "error: unknown kernel '%s' (valid: dijkstra, "
                             "delta)\n",
                             kernel.c_str());
                return false;
            }
        } else if (command == "backend") {
            std::string backend;
            in >> backend;
            if (!parse_backend_kind(backend, config.backend)) {
                std::fprintf(stderr,
                             "error: unknown backend '%s' (valid: seq, "
                             "threaded)\n",
                             backend.c_str());
                return false;
            }
        } else if (command == "graph") {
            std::string kind;
            in >> kind;
            Rng rng(seed);
            if (kind == "ba") {
                std::size_t n = 500;
                std::size_t m = 3;
                in >> n >> m;
                start(barabasi_albert(n, m, rng));
            } else if (kind == "er") {
                std::size_t n = 500;
                std::size_t edges = 1500;
                in >> n >> edges;
                start(erdos_renyi_gnm(n, edges, rng));
            } else if (kind == "file") {
                std::string path;
                in >> path;
                start(read_snap_edge_list_file(path));
            } else {
                std::fprintf(stderr,
                             "error: unknown graph kind '%s' (valid: ba, er, "
                             "file)\n",
                             kind.c_str());
                return false;
            }
        } else if (command == "steps") {
            require_engine(command);
            std::size_t k = 1;
            in >> k;
            const std::size_t ran = engine->run_rc_steps(k);
            std::printf("[%8.4fs] ran %zu RC step(s) (now at RC%zu)\n",
                        engine->sim_seconds(), ran,
                        engine->rc_steps_completed());
        } else if (command == "add") {
            require_engine(command);
            std::size_t count = 10;
            std::string strategy_name = "rr";
            std::size_t communities = 2;
            in >> count >> strategy_name >> communities;
            GrowthConfig gc;
            gc.num_new = count;
            gc.communities = std::max<std::size_t>(communities, 1);
            Rng batch_rng = workload_rng.fork();
            const auto batch =
                grow_batch(engine->num_vertices(), gc, batch_rng);
            VertexAdditionStrategy* strategy = &round_robin;
            if (strategy_name == "cutedge") {
                strategy = cut_edge.get();
            } else if (strategy_name == "repart") {
                strategy = &repartition;
            } else if (strategy_name != "rr") {
                std::fprintf(stderr,
                             "error: unknown addition strategy '%s' (valid: "
                             "rr, cutedge, repart)\n",
                             strategy_name.c_str());
                return false;
            }
            engine->apply_addition(batch, *strategy);
            mirror = apply_batch(mirror, batch);
            std::printf("[%8.4fs] +%zu vertices (%zu edges) via %s -> %zu "
                        "vertices, cut %zu\n",
                        engine->sim_seconds(), batch.num_new,
                        batch.edges.size(), strategy->name().data(),
                        engine->num_vertices(), engine->current_cut_edges());
        } else if (command == "edges") {
            require_engine(command);
            std::size_t count = 5;
            in >> count;
            std::vector<Edge> new_edges;
            std::size_t guard = 0;
            while (new_edges.size() < count && guard++ < 100 * count + 100) {
                const auto u = static_cast<VertexId>(
                    workload_rng.uniform(mirror.num_vertices()));
                const auto v = static_cast<VertexId>(
                    workload_rng.uniform(mirror.num_vertices()));
                if (u != v && mirror.add_edge(u, v, 1.0)) {
                    new_edges.push_back({u, v, 1.0});
                }
            }
            engine->add_edges(new_edges);
            std::printf("[%8.4fs] +%zu edges between existing vertices\n",
                        engine->sim_seconds(), new_edges.size());
        } else if (command == "delete") {
            require_engine(command);
            std::size_t u = 0;
            std::size_t v = 0;
            if (!(in >> u >> v)) {
                std::fprintf(stderr, "error: usage: delete <u> <v>\n");
                return false;
            }
            ShrinkBatch batch;
            batch.deletions.push_back(
                {static_cast<VertexId>(u), static_cast<VertexId>(v), 0.0});
            const ShrinkReport rep = engine->apply_deletion(batch);
            mirror.remove_edge(static_cast<VertexId>(u),
                               static_cast<VertexId>(v));
            std::printf("[%8.4fs] -edge %zu-%zu: %zu removed, %zu entries "
                        "invalidated in %zu cascade round(s)\n",
                        engine->sim_seconds(), u, v, rep.edges_removed,
                        rep.invalidated_entries, rep.cascade_rounds);
        } else if (command == "delete-vertex") {
            require_engine(command);
            std::size_t v = 0;
            if (!(in >> v)) {
                std::fprintf(stderr, "error: usage: delete-vertex <v>\n");
                return false;
            }
            if (v >= mirror.num_vertices()) {
                std::fprintf(stderr, "error: vertex %zu out of range\n", v);
                return false;
            }
            ShrinkBatch batch;
            batch.vertices.push_back(static_cast<VertexId>(v));
            const ShrinkReport rep = engine->apply_deletion(batch);
            std::vector<VertexId> targets;
            for (const Neighbor& nb :
                 mirror.neighbors(static_cast<VertexId>(v))) {
                targets.push_back(nb.to);
            }
            for (const VertexId t : targets) {
                mirror.remove_edge(static_cast<VertexId>(v), t);
            }
            std::printf("[%8.4fs] -vertex %zu: %zu incident edge(s) removed, "
                        "%zu entries invalidated in %zu cascade round(s)\n",
                        engine->sim_seconds(), v, rep.edges_removed,
                        rep.invalidated_entries, rep.cascade_rounds);
        } else if (command == "reweight") {
            require_engine(command);
            std::size_t u = 0;
            std::size_t v = 0;
            double w = 0;
            if (!(in >> u >> v >> w) || w <= 0) {
                std::fprintf(stderr,
                             "error: usage: reweight <u> <v> <w>, w > 0\n");
                return false;
            }
            const Edge update{static_cast<VertexId>(u),
                              static_cast<VertexId>(v), w};
            const ShrinkReport rep = engine->update_edge_weights({&update, 1});
            mirror.set_edge_weight(update.u, update.v, w);
            std::printf("[%8.4fs] reweight %zu-%zu -> %g: %zu raise(s), %zu "
                        "decrease(s), %zu entries invalidated\n",
                        engine->sim_seconds(), u, v, w, rep.weight_increases,
                        rep.weight_decreases, rep.invalidated_entries);
        } else if (command == "converge") {
            require_engine(command);
            const std::size_t ran = engine->run_to_quiescence();
            std::printf("[%8.4fs] converged after %zu step(s) (RC%zu total)\n",
                        engine->sim_seconds(), ran,
                        engine->rc_steps_completed());
        } else if (command == "closeness") {
            require_engine(command);
            std::size_t top = 5;
            in >> top;
            const auto scores = engine->closeness();
            const auto ranking = closeness_ranking(scores);
            std::printf("[%8.4fs] top-%zu closeness:", engine->sim_seconds(), top);
            for (std::size_t i = 0; i < top && i < ranking.size(); ++i) {
                std::printf(" %u(%.3g)", ranking[i],
                            scores.closeness[ranking[i]]);
            }
            std::printf("\n");
        } else if (command == "telemetry") {
            require_engine(command);
            std::printf("  step  exch_s     msgs   bytes       ops\n");
            for (const RcStepStats& s : engine->step_history()) {
                std::printf("  %-5zu %-10.5f %-6zu %-11zu %.3g\n", s.step,
                            s.exchange_seconds, s.messages, s.bytes, s.ops);
            }
        } else if (command == "metrics") {
            require_engine(command);
            std::string format = "json";
            std::string path;
            in >> format >> path;
            std::string payload;
            if (format == "csv") {
                payload = telemetry_csv(*engine);
            } else if (format == "json") {
                payload = telemetry_json(*engine);
            } else {
                std::fprintf(stderr,
                             "error: metrics format must be json or csv, got "
                             "'%s'\n",
                             format.c_str());
                return false;
            }
            if (path.empty()) {
                std::fwrite(payload.data(), 1, payload.size(), stdout);
                std::printf("\n");
            } else {
                std::ofstream out(path);
                if (!out) {
                    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
                    return false;
                }
                out << payload << '\n';
                std::printf("[%8.4fs] %s timeline written to %s\n",
                            engine->sim_seconds(), format.c_str(), path.c_str());
            }
        } else if (command == "checkpoint") {
            require_engine(command);
            std::string path;
            in >> path;
            std::ofstream out(path, std::ios::binary);
            engine->save_checkpoint(out);
            std::printf("[%8.4fs] checkpoint written to %s\n",
                        engine->sim_seconds(), path.c_str());
        } else if (command == "restore") {
            std::string path;
            in >> path;
            std::ifstream file(path, std::ios::binary);
            if (!file) {
                std::fprintf(stderr, "error: cannot open checkpoint %s\n",
                             path.c_str());
                return false;
            }
            service.reset();  // detach the boundary hook before the swap
            engine = std::make_unique<AnytimeEngine>(
                AnytimeEngine::load_checkpoint(file, config));
            mirror = engine->graph();
            attach_service();
            std::printf("[%8.4fs] restored from %s (RC%zu, %zu vertices)\n",
                        engine->sim_seconds(), path.c_str(),
                        engine->rc_steps_completed(), engine->num_vertices());
        } else if (command == "verify") {
            require_engine(command);
            const auto exact = exact_apsp(mirror);
            const auto matrix = engine->full_distance_matrix();
            std::size_t mismatches = 0;
            for (std::size_t v = 0; v < exact.size(); ++v) {
                for (std::size_t t = 0; t < exact.size(); ++t) {
                    const bool both_inf =
                        !(matrix[v][t] < kInfinity) && !(exact[v][t] < kInfinity);
                    if (!both_inf && std::abs(matrix[v][t] - exact[v][t]) > 1e-9) {
                        if (mismatches < 10) {
                            std::printf("  mismatch d(%zu,%zu): engine %g, "
                                        "exact %g (%s)\n",
                                        v, t, matrix[v][t], exact[v][t],
                                        matrix[v][t] < exact[v][t]
                                            ? "stale-low"
                                            : "not settled");
                        }
                        ++mismatches;
                    }
                }
            }
            std::printf("[%8.4fs] verify: %zu mismatching entries (%s)\n",
                        engine->sim_seconds(), mismatches,
                        mismatches == 0 ? "EXACT" : "FAILED");
            if (mismatches != 0) {
                exit_code = 1;
            }
        } else if (command == "serve-policy") {
            std::string name;
            in >> name;
            if (!parse_policy(name, policy)) {
                return false;
            }
            std::printf("serve policy: %s\n",
                        std::string(freshness_policy_name(policy)).c_str());
        } else if (command == "serve-shards") {
            std::string value;
            in >> value;
            if (value != "on" && value != "off") {
                std::fprintf(stderr,
                             "error: serve-shards must be on or off, got "
                             "'%s'\n",
                             value.c_str());
                return false;
            }
            serve_shards = value == "on";
            if (engine) {
                attach_service();  // rebuild the serve layer over the engine
            }
            std::printf("serve shards: %s\n", value.c_str());
        } else if (command == "tenant") {
            std::string name;
            if (!(in >> name)) {
                std::fprintf(stderr,
                             "error: usage: tenant <name> [max-pending] "
                             "[slo]\n");
                return false;
            }
            const auto it = std::find_if(
                tenant_defs.begin(), tenant_defs.end(),
                [&](const TenantDef& def) { return def.name == name; });
            std::string token;
            if (in >> token) {
                if (name == "default" || it != tenant_defs.end()) {
                    std::fprintf(stderr,
                                 "error: tenant '%s' is already defined; "
                                 "re-select it without arguments\n",
                                 name.c_str());
                    return false;
                }
                TenantDef def;
                def.name = name;
                char* end = nullptr;
                const unsigned long long pending =
                    std::strtoull(token.c_str(), &end, 10);
                if (token.empty() || end != token.c_str() + token.size()) {
                    std::fprintf(stderr,
                                 "error: tenant max-pending must be a "
                                 "non-negative integer, got '%s'\n",
                                 token.c_str());
                    return false;
                }
                def.config.max_pending = static_cast<std::size_t>(pending);
                if (in >> token) {
                    const double slo = std::strtod(token.c_str(), &end);
                    if (end != token.c_str() + token.size() || !(slo >= 0)) {
                        std::fprintf(stderr,
                                     "error: tenant slo must be a "
                                     "non-negative number of wall-seconds, "
                                     "got '%s'\n",
                                     token.c_str());
                        return false;
                    }
                    def.config.freshness_slo = slo;
                }
                if (service) {
                    def.id = service->register_tenant(def.name, def.config);
                }
                tenant_defs.push_back(def);
            } else if (name != "default" && it == tenant_defs.end()) {
                std::fprintf(stderr,
                             "error: unknown tenant '%s' (define it first: "
                             "tenant <name> [max-pending] [slo])\n",
                             name.c_str());
                return false;
            }
            active_tenant_name = name;
            active_tenant = tenant_id(name);
            if (service) {
                const TenantCounters tc =
                    service->tenant_counters(active_tenant);
                char slo_text[32];
                if (tc.config.freshness_slo ==
                    std::numeric_limits<double>::infinity()) {
                    std::snprintf(slo_text, sizeof slo_text, "inf");
                } else {
                    std::snprintf(slo_text, sizeof slo_text, "%.3gs",
                                  tc.config.freshness_slo);
                }
                std::printf("[%8.4fs] tenant %s (active): max-pending %zu, "
                            "slo %s, served %llu, shed %llu, slo-misses "
                            "%llu\n",
                            engine->sim_seconds(), name.c_str(),
                            tc.config.max_pending, slo_text,
                            static_cast<unsigned long long>(tc.served),
                            static_cast<unsigned long long>(tc.shed),
                            static_cast<unsigned long long>(tc.slo_misses));
            } else {
                std::printf("tenant %s (active)\n", name.c_str());
            }
        } else if (command == "query") {
            require_engine(command);
            std::size_t v = 0;
            if (!(in >> v)) {
                std::fprintf(stderr, "error: usage: query <v> [policy]\n");
                return false;
            }
            FreshnessPolicy query_policy = policy;
            std::string name;
            if (in >> name && !parse_policy(name, query_policy)) {
                return false;
            }
            const auto result = service->point(static_cast<VertexId>(v),
                                               query_policy, active_tenant);
            if (result.meta.status != QueryStatus::Ok) {
                std::fprintf(stderr, "error: query for %zu not served\n", v);
                return false;
            }
            if (query_policy == FreshnessPolicy::BoundedError) {
                std::printf("[%8.4fs] query %zu (bounded-error): closeness "
                            "%.6g in [%.6g, %.6g]%s  [snapshot v%llu, RC%zu%s]\n",
                            engine->sim_seconds(), v, result.closeness,
                            result.bound_lo, result.bound_hi,
                            result.exact ? ", EXACT" : "",
                            static_cast<unsigned long long>(result.meta.version),
                            result.meta.rc_step,
                            result.meta.quiescent ? ", quiescent" : "");
                return true;
            }
            std::printf("[%8.4fs] query %zu (%s): closeness %.6g, reachable "
                        "%zu  [snapshot v%llu, RC%zu%s]\n",
                        engine->sim_seconds(), v,
                        std::string(freshness_policy_name(query_policy)).c_str(),
                        result.closeness, result.reachable,
                        static_cast<unsigned long long>(result.meta.version),
                        result.meta.rc_step,
                        result.meta.quiescent ? ", quiescent" : "");
        } else if (command == "topk") {
            require_engine(command);
            std::size_t k = 5;
            in >> k;
            FreshnessPolicy query_policy = policy;
            std::string name;
            if (in >> name && !parse_policy(name, query_policy)) {
                return false;
            }
            const auto result = service->topk(k, query_policy, active_tenant);
            if (result.meta.status != QueryStatus::Ok) {
                std::fprintf(stderr, "error: top-%zu query not served\n", k);
                return false;
            }
            std::printf("[%8.4fs] top-%zu (%s, snapshot v%llu%s):",
                        engine->sim_seconds(), k,
                        std::string(freshness_policy_name(query_policy)).c_str(),
                        static_cast<unsigned long long>(result.meta.version),
                        result.certified ? ", certified" : "");
            for (const auto& entry : result.entries) {
                std::printf(" %u(%.3g)", entry.vertex, entry.score);
            }
            std::printf("\n");
        } else if (command == "refine-policy") {
            std::string name;
            in >> name;
            RefinePolicy rp{RefinePolicy::Uniform};
            if (!parse_refine_policy(name, rp)) {
                std::fprintf(stderr,
                             "error: unknown refine policy '%s' (valid: "
                             "uniform, heat, topk)\n",
                             name.c_str());
                return false;
            }
            config.refine_policy = rp;  // future engines inherit it
            if (engine) {
                engine->set_refine_policy(rp);
            }
            std::printf("refine policy: %s\n",
                        std::string(refine_policy_name(rp)).c_str());
        } else if (command == "heat") {
            require_engine(command);
            std::size_t v = 0;
            if (!(in >> v)) {
                std::fprintf(stderr, "error: usage: heat <v> [weight]\n");
                return false;
            }
            double weight = 1.0;
            if (in >> weight && !(weight > 0)) {
                std::fprintf(stderr, "error: heat weight must be > 0\n");
                return false;
            }
            if (v >= engine->num_vertices()) {
                std::fprintf(stderr, "error: vertex %zu out of range\n", v);
                return false;
            }
            engine->demand().record(static_cast<VertexId>(v), weight);
            std::printf("[%8.4fs] heat %zu += %g (now %.3g)\n",
                        engine->sim_seconds(), v, weight,
                        engine->demand().heat(static_cast<VertexId>(v)));
        } else if (command == "bounds") {
            require_engine(command);
            std::size_t v = 0;
            if (!(in >> v)) {
                std::fprintf(stderr, "error: usage: bounds <v>\n");
                return false;
            }
            if (v >= engine->num_vertices()) {
                std::fprintf(stderr, "error: vertex %zu out of range\n", v);
                return false;
            }
            const ClosenessInterval iv =
                engine->closeness_interval(static_cast<VertexId>(v));
            std::printf("[%8.4fs] bounds %zu: closeness in [%.6g, %.6g] "
                        "(%s), %zu/%zu entries settled, wavefront k=%lld\n",
                        engine->sim_seconds(), v, iv.lo, iv.hi,
                        iv.exact ? "EXACT" : "pending", iv.settled,
                        engine->num_vertices(),
                        static_cast<long long>(engine->wavefront_steps()));
        } else if (command == "shards") {
            require_engine(command);
            const ShardOwnership& ownership = engine->shard_ownership();
            const auto sizes = ownership.shard_sizes();
            const auto& load = engine->migration_planner().rank_load();
            std::printf("[%8.4fs] %zu shards over %u ranks "
                        "(load imbalance %.3f, %zu shard(s) migrated)\n",
                        engine->sim_seconds(), ownership.num_shards(),
                        config.num_ranks,
                        engine->migration_planner().imbalance(),
                        engine->report().shard_migrations);
            for (RankId r = 0; r < config.num_ranks; ++r) {
                std::size_t shards = 0;
                std::size_t vertices = 0;
                for (ShardId s = 0; s < ownership.num_shards(); ++s) {
                    if (ownership.rank_of(s) == r) {
                        ++shards;
                        vertices += sizes[s];
                    }
                }
                std::printf("  rank %-3u %3zu shard(s) %5zu vertices"
                            "  load %.3g\n",
                            r, shards, vertices,
                            r < load.size() ? load[r] : 0.0);
            }
        } else if (command == "migrate") {
            require_engine(command);
            std::size_t n = 0;
            if (!(in >> n) || n == 0) {
                std::fprintf(stderr, "error: usage: migrate <n>, n > 0\n");
                return false;
            }
            const auto moves =
                engine->plan_migration(static_cast<std::uint32_t>(n));
            const std::size_t before = engine->report().shard_migrations;
            const std::size_t rows_before = engine->report().migrated_rows;
            engine->migrate_shards(moves);
            std::printf("[%8.4fs] migrate: planned %zu move(s), applied %zu "
                        "(%zu row(s) shipped)\n",
                        engine->sim_seconds(), moves.size(),
                        engine->report().shard_migrations - before,
                        engine->report().migrated_rows - rows_before);
        } else if (command == "auto-migrate") {
            require_engine(command);
            std::string value;
            in >> value;
            if (value != "on" && value != "off") {
                std::fprintf(stderr,
                             "error: auto-migrate must be on or off, got "
                             "'%s'\n",
                             value.c_str());
                return false;
            }
            double threshold = config.migrate_imbalance_threshold;
            if (in >> threshold && !(threshold >= 1.0)) {
                std::fprintf(stderr,
                             "error: auto-migrate threshold must be >= 1.0\n");
                return false;
            }
            config.auto_migrate = value == "on";  // future engines inherit it
            config.migrate_imbalance_threshold = threshold;
            engine->set_auto_migrate(config.auto_migrate);
            engine->set_migrate_imbalance_threshold(threshold);
            std::printf("auto-migrate: %s (threshold %.3g)\n", value.c_str(),
                        threshold);
        } else if (command == "help") {
            std::fputs(kHelpText, stdout);
        } else {
            std::fprintf(stderr,
                         "error: unknown command '%s' (run 'help' for the "
                         "command list)\n",
                         command.c_str());
            std::fputs(kHelpText, stderr);
            return false;
        }
        return true;
    }
};

}  // namespace

int main(int argc, char** argv) {
    if (argc != 2) {
        std::fprintf(stderr, "usage: scenario_runner <file.scn | ->\n");
        return 2;
    }
    std::ifstream file;
    std::istream* in = &std::cin;
    if (std::string(argv[1]) != "-") {
        file.open(argv[1]);
        if (!file) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 2;
        }
        in = &file;
    }
    Runner runner;
    std::string line;
    while (std::getline(*in, line)) {
        if (!runner.handle(line)) {
            return 2;
        }
    }
    return runner.exit_code;
}
