#!/bin/sh
# Fails (exit 1) if any build-tree artifact is tracked or staged in git:
# build*/ directories must never enter the index. Run it standalone, from a
# pre-commit hook, or let CMake invoke it at configure time (it does, when
# configuring inside a git checkout).
#
#   tools/check_tree_hygiene.sh [repo-root]
set -u

root="${1:-$(dirname "$0")/..}"
cd "$root" || exit 2

if ! git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
    # Tarball / exported source: nothing to check.
    exit 0
fi

# Tracked files and staged additions, filtered to build trees.
offenders=$( { git ls-files; git diff --cached --name-only --diff-filter=A; } |
    grep -E '^build[^/]*/' | sort -u)

if [ -n "$offenders" ]; then
    count=$(printf '%s\n' "$offenders" | wc -l)
    echo "error: $count build-tree artifact(s) tracked or staged in git:" >&2
    printf '%s\n' "$offenders" | head -20 >&2
    if [ "$count" -gt 20 ]; then
        echo "  ... and $((count - 20)) more" >&2
    fi
    echo "fix: git rm -r --cached 'build*/' (they are covered by .gitignore)" >&2
    exit 1
fi
exit 0
