// graphgen — dataset generator CLI.
//
// Emits graphs in SNAP edge-list or Pajek format from any of the library's
// generators, for feeding the benchmarks, the examples, or external tools.
//
//   graphgen ba      --n 50000 --m 3                 > graph.txt
//   graphgen rmat    --scale 16 --edges 500000       > rmat.txt
//   graphgen sbm     --n 10000 --communities 16 --pin 0.02 --pout 0.0005
//   graphgen ws      --n 5000 --k 4 --beta 0.1
//   graphgen er      --n 2000 --edges 10000
// Common flags: --seed S, --wmin W --wmax W (random weights), --pajek,
//               --out PATH (default stdout).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/metrics.hpp"

namespace {

[[noreturn]] void usage(const char* error = nullptr) {
    if (error != nullptr) {
        std::fprintf(stderr, "error: %s\n\n", error);
    }
    std::fprintf(stderr,
                 "usage: graphgen <ba|er|ws|sbm|rmat> [flags]\n"
                 "  ba:   --n N --m EDGES_PER_VERTEX\n"
                 "  er:   --n N --edges M\n"
                 "  ws:   --n N --k K --beta B\n"
                 "  sbm:  --n N --communities C --pin P --pout P\n"
                 "  rmat: --scale S --edges M [--a --b --c --d]\n"
                 "  common: --seed S --wmin W --wmax W --pajek --out PATH\n");
    std::exit(2);
}

struct Args {
    std::string kind;
    std::size_t n{1000};
    std::size_t m{3};
    std::size_t edges{5000};
    std::size_t k{3};
    std::size_t scale{12};
    std::size_t communities{8};
    double beta{0.1};
    double pin{0.02};
    double pout{0.001};
    aa::RmatParams rmat_params{};
    std::uint64_t seed{1};
    double wmin{1.0};
    double wmax{1.0};
    bool pajek{false};
    std::string out;
};

Args parse(int argc, char** argv) {
    if (argc < 2) {
        usage();
    }
    Args args;
    args.kind = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string flag = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage(("missing value for " + flag).c_str());
            }
            return argv[++i];
        };
        if (flag == "--n") args.n = std::stoul(value());
        else if (flag == "--m") args.m = std::stoul(value());
        else if (flag == "--edges") args.edges = std::stoul(value());
        else if (flag == "--k") args.k = std::stoul(value());
        else if (flag == "--scale") args.scale = std::stoul(value());
        else if (flag == "--communities") args.communities = std::stoul(value());
        else if (flag == "--beta") args.beta = std::stod(value());
        else if (flag == "--pin") args.pin = std::stod(value());
        else if (flag == "--pout") args.pout = std::stod(value());
        else if (flag == "--a") args.rmat_params.a = std::stod(value());
        else if (flag == "--b") args.rmat_params.b = std::stod(value());
        else if (flag == "--c") args.rmat_params.c = std::stod(value());
        else if (flag == "--d") args.rmat_params.d = std::stod(value());
        else if (flag == "--seed") args.seed = std::stoull(value());
        else if (flag == "--wmin") args.wmin = std::stod(value());
        else if (flag == "--wmax") args.wmax = std::stod(value());
        else if (flag == "--pajek") args.pajek = true;
        else if (flag == "--out") args.out = value();
        else usage(("unknown flag " + flag).c_str());
    }
    return args;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace aa;
    const Args args = parse(argc, argv);

    Rng rng(args.seed);
    const WeightRange weights{args.wmin, args.wmax};
    DynamicGraph g;
    if (args.kind == "ba") {
        g = barabasi_albert(args.n, args.m, rng, weights);
    } else if (args.kind == "er") {
        g = erdos_renyi_gnm(args.n, args.edges, rng, weights);
    } else if (args.kind == "ws") {
        g = watts_strogatz(args.n, args.k, args.beta, rng, weights);
    } else if (args.kind == "sbm") {
        g = planted_partition(args.n, args.communities, args.pin, args.pout, rng,
                              nullptr, weights);
    } else if (args.kind == "rmat") {
        g = rmat(args.scale, args.edges, rng, args.rmat_params, weights);
    } else {
        usage(("unknown generator " + args.kind).c_str());
    }

    std::fprintf(stderr, "generated %s: %zu vertices, %zu edges, avg degree %.2f\n",
                 args.kind.c_str(), g.num_vertices(), g.num_edges(),
                 average_degree(g));
    if (args.out.empty()) {
        if (args.pajek) {
            write_pajek(g, std::cout);
        } else {
            write_snap_edge_list(g, std::cout);
        }
    } else {
        if (args.pajek) {
            write_pajek_file(g, args.out);
        } else {
            write_snap_edge_list_file(g, args.out);
        }
        std::fprintf(stderr, "written to %s\n", args.out.c_str());
    }
    return 0;
}
