// Scenario: a full centrality study of one network, using every measure in
// the library — the "SNA toolbox" view of the framework.
//
//   * degree centrality + Freeman centralization (structure at a glance),
//   * closeness via the anytime-anywhere engine (the paper's measure),
//   * harmonic closeness and eccentricity/diameter from the same DVs,
//   * PageRank on the same simulated cluster,
//   * betweenness, refined anytime-style from sampled pivots to exact,
// and a comparison of who each measure crowns as most central.
#include <algorithm>
#include <cstdio>

#include "core/closeness.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "measures/betweenness.hpp"
#include "measures/degree.hpp"
#include "measures/pagerank.hpp"

namespace {

aa::VertexId argmax(const std::vector<double>& scores) {
    return static_cast<aa::VertexId>(
        std::max_element(scores.begin(), scores.end()) - scores.begin());
}

}  // namespace

int main() {
    using namespace aa;

    Rng rng(21);
    const DynamicGraph network = barabasi_albert(400, 3, rng);
    std::printf("network: %zu vertices, %zu edges, clustering %.4f, "
                "degree centralization %.4f\n\n",
                network.num_vertices(), network.num_edges(),
                global_clustering_coefficient(network),
                degree_centralization(network));

    EngineConfig config;
    config.num_ranks = 8;
    config.ia_threads = 4;

    // Degree: free.
    const auto degree = normalized_degree_centrality(network);
    const VertexId degree_top = degree_ranking(network)[0];

    // Closeness & friends: one anytime-anywhere run covers three measures.
    AnytimeEngine engine(network, config);
    engine.initialize();
    engine.run_to_quiescence();
    const auto matrix = engine.full_distance_matrix();
    const auto closeness = closeness_from_matrix(matrix);
    const auto harmonic = harmonic_closeness_from_matrix(matrix);
    const auto ecc = eccentricity_from_matrix(matrix);
    const VertexId closeness_top = closeness_ranking(closeness)[0];
    std::printf("closeness engine: %zu RC steps, %.3f sim s; diameter %.0f, "
                "radius %.0f\n",
                engine.rc_steps_completed(), engine.sim_seconds(), ecc.diameter,
                ecc.radius);

    // PageRank on the same substrate.
    PageRankEngine pagerank(network, config);
    pagerank.initialize();
    const std::size_t pr_iterations = pagerank.run_to_convergence();
    const auto pr = pagerank.scores();
    std::printf("pagerank: %zu iterations, %.3f sim s\n", pr_iterations,
                pagerank.sim_seconds());

    // Betweenness: anytime refinement — watch the estimate stabilize.
    BetweennessEngine betweenness(network, config);
    betweenness.initialize();
    std::printf("betweenness (anytime refinement):\n");
    VertexId previous_top = kInvalidVertex;
    while (!betweenness.exact()) {
        betweenness.refine(80);
        const auto estimate = betweenness.scores();
        const VertexId top = argmax(estimate);
        std::printf("  %3zu/%zu pivots: top=%u%s\n",
                    betweenness.pivots_processed(), network.num_vertices(), top,
                    top == previous_top ? " (stable)" : "");
        previous_top = top;
    }
    const auto bc = betweenness.scores();

    // Who is "the most central"? Depends on the question you ask.
    std::printf("\nmost central vertex by measure:\n");
    std::printf("  degree     %u   (most direct ties)\n", degree_top);
    std::printf("  closeness  %u   (reaches everyone fastest)\n", closeness_top);
    std::printf("  harmonic   %u\n",
                static_cast<VertexId>(std::max_element(harmonic.begin(),
                                                       harmonic.end()) -
                                      harmonic.begin()));
    std::printf("  pagerank   %u   (most endorsed)\n", argmax(pr));
    std::printf("  betweenness %u  (most traffic brokered)\n", argmax(bc));

    // On a BA hub graph all measures usually agree on the hub set.
    const bool agree = degree_top == closeness_top;
    std::printf("\ndegree and closeness agree on the top hub: %s\n",
                agree ? "yes" : "no (interesting network!)");
    return 0;
}
