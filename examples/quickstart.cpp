// Quickstart: the complete anytime-anywhere workflow in ~60 lines.
//
//   1. build (or load) a graph,
//   2. run DD + IA on a simulated cluster,
//   3. refine with RC steps — interrupt any time for a partial answer,
//   4. add vertices while the analysis is running,
//   5. read off closeness centrality.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "core/engine.hpp"
#include "core/strategies.hpp"
#include "graph/generators.hpp"

int main() {
    using namespace aa;

    // A scale-free social network, as the paper's experiments use.
    Rng rng(7);
    DynamicGraph graph = barabasi_albert(/*n=*/500, /*edges_per_vertex=*/3, rng);
    std::printf("graph: %zu vertices, %zu edges\n", graph.num_vertices(),
                graph.num_edges());

    // Engine on a simulated 8-processor cluster, 4 IA threads per rank.
    EngineConfig config;
    config.num_ranks = 8;
    config.ia_threads = 4;
    AnytimeEngine engine(std::move(graph), config);

    // Phase 1+2: domain decomposition and initial approximation.
    engine.initialize();
    std::printf("after DD+IA: sim time %.4fs, cut edges %zu\n",
                engine.sim_seconds(), engine.current_cut_edges());

    // Phase 3: recombination. The *anytime* property: stop after any step and
    // the distance vectors are a valid (upper-bound) partial answer.
    engine.run_rc_steps(2);
    const auto partial = engine.closeness();
    std::printf("after 2 RC steps (interruptible): closeness[0] >= %.6f\n",
                partial.closeness[0]);

    // The *anywhere* property: new vertices arrive mid-analysis. Assign them
    // with round-robin and incorporate them without restarting.
    GrowthConfig growth;
    growth.num_new = 25;
    growth.communities = 2;
    Rng batch_rng(11);
    const GrowthBatch batch = grow_batch(engine.num_vertices(), growth, batch_rng);
    RoundRobinPS strategy;
    engine.apply_addition(batch, strategy);
    std::printf("added %zu vertices / %zu edges in-flight\n", batch.num_new,
                batch.edges.size());

    // Converge and rank the actors.
    engine.run_to_quiescence();
    const auto scores = engine.closeness();
    const auto ranking = closeness_ranking(scores);
    std::printf("converged after %zu RC steps, sim time %.4fs\n",
                engine.rc_steps_completed(), engine.sim_seconds());
    std::printf("top-5 central actors:\n");
    for (int i = 0; i < 5; ++i) {
        std::printf("  #%d vertex %u  closeness %.6f\n", i + 1, ranking[i],
                    scores.closeness[ranking[i]]);
    }
    return 0;
}
