// Scenario: operating a long-running analysis service.
//
// Demonstrates the operational side of the anytime-anywhere design:
//   * per-RC-step telemetry (bytes / messages / ops / exchange time),
//   * taking a checkpoint of an in-flight analysis,
//   * "crashing" (dropping the engine) and resuming from the checkpoint on a
//     fresh engine, then absorbing more dynamic updates,
//   * the distributed closeness reduction a deployment would actually run.
#include <cstdio>
#include <optional>
#include <sstream>

#include "core/closeness.hpp"
#include "core/engine.hpp"
#include "core/strategies.hpp"
#include "graph/generators.hpp"

int main() {
    using namespace aa;

    Rng rng(99);
    DynamicGraph network = barabasi_albert(600, 3, rng);

    EngineConfig config;
    config.num_ranks = 8;
    config.ia_threads = 4;

    std::stringstream checkpoint;
    {
        AnytimeEngine engine(network, config);
        engine.initialize();
        std::printf("analysis started: %zu vertices on %zu ranks\n",
                    engine.num_vertices(), engine.num_ranks());

        // Run two steps, then snapshot mid-flight.
        engine.run_rc_steps(2);
        std::printf("\nper-step telemetry so far:\n");
        std::printf("  %-5s %-10s %-9s %-12s %-10s\n", "step", "exch_s", "msgs",
                    "bytes", "ops");
        for (const RcStepStats& s : engine.step_history()) {
            std::printf("  %-5zu %-10.4f %-9zu %-12zu %-10.3g\n", s.step,
                        s.exchange_seconds, s.messages, s.bytes, s.ops);
        }

        engine.save_checkpoint(checkpoint);
        std::printf("\ncheckpoint taken at RC%zu (%.4f sim s, %zu bytes)\n",
                    engine.rc_steps_completed(), engine.sim_seconds(),
                    static_cast<std::size_t>(checkpoint.str().size()));
        // Engine destroyed here — simulated crash.
    }

    std::printf("--- process restarted; resuming from checkpoint ---\n");
    auto engine = AnytimeEngine::load_checkpoint(checkpoint, config);
    std::printf("resumed at RC%zu, sim clock %.4fs\n", engine.rc_steps_completed(),
                engine.sim_seconds());

    // New actors arrive after the resume; incorporate and converge.
    GrowthConfig growth;
    growth.num_new = 40;
    growth.communities = 2;
    Rng batch_rng(7);
    const GrowthBatch batch = grow_batch(engine.num_vertices(), growth, batch_rng);
    CutEdgePS strategy(13);
    engine.apply_addition(batch, strategy);
    engine.run_to_quiescence();
    std::printf("absorbed %zu new actors, converged at RC%zu (%.4f sim s)\n",
                batch.num_new, engine.rc_steps_completed(), engine.sim_seconds());

    // Production-style result extraction: the distributed reduction.
    const auto scores = engine.compute_closeness_distributed();
    const auto ranking = closeness_ranking(scores);
    std::printf("\ntop-5 after recovery & growth:\n");
    for (int i = 0; i < 5; ++i) {
        std::printf("  #%d vertex %-6u closeness %.6g\n", i + 1, ranking[i],
                    scores.closeness[ranking[i]]);
    }

    // Validate the recovery was lossless.
    DynamicGraph grown = network;
    grown.add_vertices(batch.num_new);
    for (const Edge& e : batch.edges) {
        grown.add_edge(e.u, e.v, e.weight);
    }
    const auto exact = exact_closeness(grown);
    double worst = 0;
    for (std::size_t v = 0; v < exact.closeness.size(); ++v) {
        worst = std::max(worst, std::abs(scores.closeness[v] - exact.closeness[v]));
    }
    std::printf("\nmax |closeness - exact| after crash recovery: %.2e  (%s)\n",
                worst, worst < 1e-9 ? "LOSSLESS" : "DATA LOSS");
    return worst < 1e-9 ? 0 : 1;
}
