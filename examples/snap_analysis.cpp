// Scenario: analysing a real dataset file end to end.
//
// Loads a SNAP edge-list file (the public SNAP datasets' format), runs the
// full anytime-anywhere pipeline on it, and prints a centrality report plus
// structural statistics. If no file is given, a scale-free stand-in is
// generated and written to disk first, so the example is runnable offline
// (this environment has no network access to fetch real SNAP dumps —
// see DESIGN.md §2).
//
// Usage: snap_analysis [path/to/edgelist.txt] [ranks]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/engine.hpp"
#include "core/strategies.hpp"
#include "graph/community.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/metrics.hpp"

int main(int argc, char** argv) {
    using namespace aa;

    std::string path = argc > 1 ? argv[1] : "";
    const auto ranks = static_cast<std::uint32_t>(argc > 2 ? std::atoi(argv[2]) : 8);

    DynamicGraph graph;
    if (path.empty()) {
        path = "snap_sample.txt";
        Rng rng(1);
        write_snap_edge_list_file(barabasi_albert(900, 3, rng), path);
        std::printf("no input given; generated stand-in dataset %s\n", path.c_str());
    }
    try {
        graph = read_snap_edge_list_file(path);
    } catch (const IoError& error) {
        std::fprintf(stderr, "failed to load %s: %s\n", path.c_str(), error.what());
        return 1;
    }

    std::printf("dataset: %s\n", path.c_str());
    std::printf("  %zu vertices, %zu edges, avg degree %.2f\n", graph.num_vertices(),
                graph.num_edges(), average_degree(graph));
    std::printf("  components: %zu, clustering coeff %.4f, power-law gamma %.2f\n",
                num_connected_components(graph),
                global_clustering_coefficient(graph),
                power_law_exponent_mle(graph));

    Rng louvain_rng(3);
    const auto communities = louvain(graph, louvain_rng);
    std::printf("  Louvain: %u communities, modularity %.3f\n\n",
                communities.num_communities, communities.modularity);

    EngineConfig config;
    config.num_ranks = ranks;
    config.ia_threads = 4;
    AnytimeEngine engine(graph, config);
    engine.initialize();
    std::printf("DD done on %u simulated ranks: %zu cut edges (%.1f%%)\n", ranks,
                engine.current_cut_edges(),
                100.0 * static_cast<double>(engine.current_cut_edges()) /
                    static_cast<double>(graph.num_edges()));

    engine.run_to_quiescence();
    std::printf("converged: %zu RC steps, %.3f simulated seconds "
                "(%.0f%% communication)\n\n",
                engine.rc_steps_completed(), engine.sim_seconds(),
                100.0 * engine.cluster().stats().comm_seconds / engine.sim_seconds());

    const auto scores = engine.closeness();
    const auto ranking = closeness_ranking(scores);
    std::printf("top-10 closeness centrality:\n");
    for (std::size_t i = 0; i < 10 && i < ranking.size(); ++i) {
        const VertexId v = ranking[i];
        std::printf("  #%zu  vertex %-8u closeness %.6g  degree %zu  community %u\n",
                    i + 1, v, scores.closeness[v], graph.degree(v),
                    communities.membership[v]);
    }
    return 0;
}
