// Scenario: a growing online community (the paper's motivating workload —
// "new actors joining an online community").
//
// A scale-free host network receives a continuous stream of small
// community-structured joins. The example keeps closeness centrality up to
// date through the stream, switching strategy per event exactly as the
// paper's summary recommends:
//   * small trickle  -> anywhere addition (RoundRobin-PS / CutEdge-PS),
//   * occasional big merge (e.g. another community migrates in) ->
//     Repartition-S.
// After every event it reports the current top actor and the anytime quality
// of the interrupted state, then validates the final ranking against the
// exact sequential computation.
#include <cstdio>
#include <string>

#include "core/baseline.hpp"
#include "core/closeness.hpp"
#include "core/quality.hpp"
#include "core/strategies.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"

int main() {
    using namespace aa;

    Rng rng(2026);
    DynamicGraph network = barabasi_albert(700, 3, rng);
    std::printf("initial network: %zu members, %zu ties, avg degree %.2f\n\n",
                network.num_vertices(), network.num_edges(),
                average_degree(network));

    EngineConfig config;
    config.num_ranks = 8;
    config.ia_threads = 4;
    config.seed = 5;
    AnytimeEngine engine(network, config);
    engine.initialize();
    engine.run_rc_steps(2);

    RoundRobinPS round_robin;
    CutEdgePS cut_edge(17);
    RepartitionS repartition;

    DynamicGraph mirror = network;  // for final validation
    struct Event {
        std::size_t joins;
        std::size_t communities;
        const char* kind;
    };
    // Eight stream events; the 5th is a large merge.
    const Event stream[] = {
        {12, 2, "trickle"}, {8, 1, "trickle"},  {15, 2, "trickle"},
        {10, 1, "trickle"}, {120, 5, "merge"},  {9, 1, "trickle"},
        {14, 2, "trickle"}, {11, 1, "trickle"},
    };

    std::uint64_t event_seed = 100;
    for (const Event& event : stream) {
        GrowthConfig growth;
        growth.num_new = event.joins;
        growth.communities = event.communities;
        growth.intra_edges = 2;
        growth.host_edges = 2;
        Rng batch_rng(event_seed++);
        const GrowthBatch batch =
            grow_batch(engine.num_vertices(), growth, batch_rng);

        VertexAdditionStrategy* strategy;
        if (std::string(event.kind) == "merge") {
            strategy = &repartition;  // large change: repartition + migrate
        } else if (event.communities > 1) {
            strategy = &cut_edge;  // structured join: keep communities together
        } else {
            strategy = &round_robin;  // unstructured trickle
        }
        engine.apply_addition(batch, *strategy);
        mirror = apply_batch(mirror, batch);

        // One refinement step between events, then peek at the anytime state.
        engine.rc_step();
        const auto scores = engine.closeness();
        const auto ranking = closeness_ranking(scores);
        std::printf("+%3zu members via %-13s -> %zu members, sim %.3fs, "
                    "current top actor: %u\n",
                    event.joins, strategy->name().data(), engine.num_vertices(),
                    engine.sim_seconds(), ranking[0]);
    }

    // Let the analysis drain, then validate against the exact answer.
    engine.run_to_quiescence();
    const auto final_scores = engine.closeness();
    const auto exact = exact_closeness(mirror);
    const auto ours = closeness_ranking(final_scores);
    const auto truth = closeness_ranking(exact);

    std::printf("\nconverged: %zu RC steps, %.3f simulated seconds\n",
                engine.rc_steps_completed(), engine.sim_seconds());
    std::printf("final top-3 (engine vs exact): ");
    bool match = true;
    for (int i = 0; i < 3; ++i) {
        std::printf("%u/%u ", ours[i], truth[i]);
        match = match && ours[i] == truth[i];
    }
    std::printf("\nranking check: %s\n", match ? "EXACT MATCH" : "MISMATCH");
    return match ? 0 : 1;
}
