// Scenario: choosing a domain-decomposition strategy for a deployment.
//
// The DD phase's partition quality controls both load balance (vertices per
// rank) and communication volume (cut edges) for everything that follows —
// the paper's §IV.A. This example compares the bundled partitioners across
// graph families and shows the downstream effect on a real engine run
// (simulated time to converge closeness centrality).
#include <cstdio>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "partition/multilevel.hpp"
#include "partition/simple.hpp"

namespace {

using namespace aa;

void report(const char* name, const DynamicGraph& g, const Partitioning& p) {
    const auto q = evaluate_partition(g, p);
    std::printf("  %-12s cut %5zu (%.1f%% of edges)  imbalance %.3f\n", name,
                q.cut_edges,
                100.0 * static_cast<double>(q.cut_edges) /
                    static_cast<double>(g.num_edges()),
                q.imbalance);
}

}  // namespace

int main() {
    using namespace aa;

    const std::uint32_t k = 8;
    struct Family {
        const char* name;
        DynamicGraph graph;
    };
    Rng rng(1);
    Family families[] = {
        {"scale-free (BA)", barabasi_albert(1000, 3, rng)},
        {"community (SBM)", planted_partition(1000, 8, 0.04, 0.002, rng)},
        {"small-world (WS)", watts_strogatz(1000, 3, 0.1, rng)},
    };

    for (const Family& family : families) {
        std::printf("%s: %zu vertices, %zu edges, %u parts\n", family.name,
                    family.graph.num_vertices(), family.graph.num_edges(), k);
        Rng seed_rng(7);
        report("multilevel", family.graph,
               multilevel_partition(family.graph, k, seed_rng));
        report("bfs-grow", family.graph, bfs_partition(family.graph, k, seed_rng));
        report("round-robin", family.graph,
               round_robin_partition(family.graph.num_vertices(), k));
        report("random", family.graph,
               random_partition(family.graph.num_vertices(), k, seed_rng));
        std::printf("\n");
    }

    // Downstream effect: the same analysis is faster on a better partition
    // because every RC step exchanges fewer boundary entries. We emulate a
    // bad DD phase by handing the engine a pre-scrambled vertex order is not
    // possible through the public API, so instead compare the multilevel DD
    // engine against the cut-edge count a random assignment would produce.
    std::printf("downstream: engine run on the scale-free graph (multilevel DD)\n");
    EngineConfig config;
    config.num_ranks = k;
    config.ia_threads = 4;
    AnytimeEngine engine(families[0].graph, config);
    engine.initialize();
    const std::size_t cut = engine.current_cut_edges();
    engine.run_to_quiescence();
    std::printf("  converged in %zu RC steps, %.3f sim s, live cut %zu edges\n",
                engine.rc_steps_completed(), engine.sim_seconds(), cut);
    std::printf("  comm share: %.1f%%\n",
                100.0 * engine.cluster().stats().comm_seconds /
                    engine.sim_seconds());
    return 0;
}
