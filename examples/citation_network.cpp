// Scenario: a citation network absorbing new publication venues (the
// paper's second motivating workload — "adding new publications to a
// citation network").
//
// New papers arrive as tight topical clusters (a conference's proceedings):
// exactly the community-structured batches where CutEdge-PS pays off. The
// example quantifies the strategy choice the way the paper's Figure 7 does —
// by the number of new cut-edges each assignment creates — and verifies that
// Louvain recovers the injected topical clusters from the final graph.
#include <cstdio>

#include "core/strategies.hpp"
#include "graph/community.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/metrics.hpp"

namespace {

/// New cut-edges a strategy's assignment would create for `batch` (counted
/// on the batch's own edges, given the engine's current ownership).
std::size_t assignment_cut(const aa::AnytimeEngine& engine,
                           const aa::GrowthBatch& batch,
                           const std::vector<aa::RankId>& assignment) {
    const auto& owners = engine.owners();
    const auto rank_of = [&](aa::VertexId v) {
        return v >= batch.base_id ? assignment[v - batch.base_id] : owners[v];
    };
    std::size_t cut = 0;
    for (const aa::Edge& e : batch.edges) {
        cut += rank_of(e.u) != rank_of(e.v);
    }
    return cut;
}

}  // namespace

int main() {
    using namespace aa;

    // The citation corpus: scale-free, as citation graphs are.
    Rng rng(314);
    DynamicGraph corpus = barabasi_albert(800, 3, rng);
    std::printf("citation corpus: %zu papers, %zu citations\n",
                corpus.num_vertices(), corpus.num_edges());

    EngineConfig config;
    config.num_ranks = 8;
    config.ia_threads = 4;
    AnytimeEngine engine(corpus, config);
    engine.initialize();
    engine.run_to_quiescence();
    std::printf("initial analysis converged in %zu RC steps (%.3f sim s)\n\n",
                engine.rc_steps_completed(), engine.sim_seconds());

    // A new conference's proceedings: 4 topical sessions, heavy intra-session
    // citation, a few citations into the existing corpus.
    GrowthConfig growth;
    growth.num_new = 96;
    growth.communities = 4;
    growth.intra_edges = 4;
    growth.host_edges = 1;
    growth.noise = 0.02;
    Rng batch_rng(2718);
    const GrowthBatch proceedings = grow_batch(engine.num_vertices(), growth,
                                               batch_rng);
    std::printf("new proceedings: %zu papers in %zu sessions, %zu citations\n",
                proceedings.num_new, static_cast<std::size_t>(growth.communities),
                proceedings.edges.size());

    // Compare what each assignment policy would cost in new cut-edges
    // (Figure 7's metric), then commit to CutEdge-PS.
    CutEdgePS cut_edge(161);
    const auto ce_assignment = cut_edge.assignment(engine, proceedings);
    const auto rr_assignment = RoundRobinPS::assignment(
        proceedings.num_new, static_cast<std::uint32_t>(engine.num_ranks()), 0);
    std::printf("hypothetical new cut-edges:  RoundRobin-PS %zu   CutEdge-PS %zu\n",
                assignment_cut(engine, proceedings, rr_assignment),
                assignment_cut(engine, proceedings, ce_assignment));

    engine.apply_addition(proceedings, cut_edge);
    engine.run_to_quiescence();
    std::printf("incorporated in-flight; total sim time %.3fs\n\n",
                engine.sim_seconds());

    // Most-cited-adjacent analysis: closeness ranking of the grown corpus.
    const auto scores = engine.closeness();
    const auto ranking = closeness_ranking(scores);
    std::printf("most central papers: %u, %u, %u\n", ranking[0], ranking[1],
                ranking[2]);

    // Sanity: Louvain on the final graph should isolate the new sessions as
    // communities (high modularity among the new vertices).
    Rng louvain_rng(99);
    const auto communities = louvain(engine.graph(), louvain_rng);
    std::printf("Louvain on the grown corpus: %u communities, modularity %.3f\n",
                communities.num_communities, communities.modularity);

    // Persist the grown corpus for external tooling (SNAP format).
    const std::string out = "citation_grown.snap.txt";
    write_snap_edge_list_file(engine.graph(), out);
    std::printf("grown corpus written to %s\n", out.c_str());
    return 0;
}
